// Service + Server crash-safety: recovery reproduces the uninterrupted
// run bitwise, the epoch rules sort out every snapshot/journal crash
// window, duplicate ids survive restarts, and the live poll loop handles
// concurrent clients, the watchdog, and the graceful drain.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

namespace rsin::svc {
namespace {

/// Fresh scratch directory per test; removed recursively on destruction.
struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name)
      : path(std::string(::testing::TempDir()) + name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

ServiceConfig service_config(const TempDir& dir) {
  ServiceConfig config;
  config.dir = dir.path;
  config.pool_shards = 2;
  return config;
}

/// A small deterministic script (one tenant, requests, cycles, one fault).
std::vector<std::string> script() {
  std::vector<std::string> lines = {
      "tenant name=t0 topology=omega n=8 seed=7 scheduler=breaker"};
  std::uint64_t id = 1;
  for (int round = 0; round < 3; ++round) {
    for (int p = 0; p < 5; ++p) {
      lines.push_back("req tenant=t0 id=" + std::to_string(id++) +
                      " proc=" + std::to_string(p) + " prio=0");
    }
    lines.push_back("cycle tenant=t0 id=" + std::to_string(id++));
    lines.push_back("cycle tenant=t0 id=" + std::to_string(id++));
  }
  lines.push_back("inject-fault tenant=t0 link=1");
  lines.push_back("cycle tenant=t0 id=" + std::to_string(id++));
  lines.push_back("repair tenant=t0 link=1");
  for (int i = 0; i < 6; ++i) {
    lines.push_back("cycle tenant=t0 id=" + std::to_string(id++));
  }
  return lines;
}

std::string run_script(Service& service) {
  for (const std::string& line : script()) {
    const Response reply = service.execute(line);
    EXPECT_TRUE(reply.ok) << line << " -> " << reply.body;
  }
  EXPECT_TRUE(service.commit());
  return service.execute("stats tenant=t0").body;
}

TEST(SvcServer, RecoveryReproducesTheUninterruptedRunBitwise) {
  TempDir golden_dir("svc_golden");
  Service golden(service_config(golden_dir));
  golden.start_fresh();
  const std::string golden_stats = run_script(golden);

  TempDir crash_dir("svc_crash");
  std::string pre_crash_stats;
  {
    Service victim(service_config(crash_dir));
    victim.start_fresh();
    pre_crash_stats = run_script(victim);
    // Destruction without drain/snapshot = the SIGKILL approximation: the
    // journal is flushed (commit ran) but no snapshot was taken.
  }
  EXPECT_EQ(pre_crash_stats, golden_stats);

  Service recovered(service_config(crash_dir));
  const RecoveryReport report = recovered.recover();
  EXPECT_FALSE(report.had_snapshot);
  EXPECT_TRUE(report.had_journal);
  EXPECT_FALSE(report.journal_truncated);
  EXPECT_GT(report.replayed, 0u);
  EXPECT_EQ(recovered.execute("stats tenant=t0").body, golden_stats);
}

TEST(SvcServer, NoisyTenantLeavesCalmTenantCommittingBitwise) {
  // Multi-domain isolation at the Service layer: tenant "calm" runs the
  // standard script while tenant "noisy" soaks up fabric faults and is
  // shoved to the bottom of the degradation ladder. calm's stats (which
  // carry its state hash) must be bitwise equal to a control service
  // where noisy never existed, and every calm command keeps committing.
  TempDir control_dir("svc_iso_control");
  Service control(service_config(control_dir));
  control.start_fresh();
  for (const std::string& line : script()) {
    ASSERT_TRUE(control.execute(line).ok);
  }
  ASSERT_TRUE(control.commit());
  const std::string control_stats = control.execute("stats tenant=t0").body;

  TempDir shared_dir("svc_iso_shared");
  Service shared(service_config(shared_dir));
  shared.start_fresh();
  ASSERT_TRUE(shared
                  .execute("tenant name=noisy topology=omega n=8 seed=9 "
                           "scheduler=breaker")
                  .ok);
  std::uint64_t noisy_id = 1;
  bool degraded = false;
  for (const std::string& line : script()) {
    ASSERT_TRUE(shared.execute(line).ok) << line;
    ASSERT_TRUE(shared.commit()) << "calm-tenant command failed to commit";
    // Interleave noisy-tenant chaos between every calm command.
    ASSERT_TRUE(shared
                    .execute("req tenant=noisy id=" +
                             std::to_string(noisy_id++) + " proc=" +
                             std::to_string(noisy_id % 8) + " prio=0")
                    .ok);
    if (!degraded && noisy_id > 4) {
      for (int link = 0; link < 6; ++link) {
        ASSERT_TRUE(shared
                        .execute("inject-fault tenant=noisy link=" +
                                 std::to_string(link))
                        .ok);
      }
      ASSERT_TRUE(shared.execute("set tenant=noisy level=2").ok);
      degraded = true;
    }
    ASSERT_TRUE(shared
                    .execute("cycle tenant=noisy id=" +
                             std::to_string(1000000 + noisy_id))
                    .ok);
  }
  ASSERT_TRUE(shared.commit());
  EXPECT_EQ(shared.execute("stats tenant=t0").body, control_stats)
      << "noisy tenant's degradation leaked into the calm tenant";
}

TEST(SvcServer, DuplicateRequestIdSurvivesRecovery) {
  TempDir dir("svc_dup");
  {
    Service service(service_config(dir));
    service.start_fresh();
    run_script(service);
  }
  Service recovered(service_config(dir));
  (void)recovered.recover();
  // id=1 was admitted before the crash; the client's retry must be told
  // `duplicate`, not re-executed.
  const Response reply =
      recovered.execute("req tenant=t0 id=1 proc=4 prio=2");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.body, "status=duplicate");
}

TEST(SvcServer, TornJournalTailIsDroppedAndReported) {
  TempDir dir("svc_torn");
  std::string journal_path;
  {
    Service service(service_config(dir));
    service.start_fresh();
    run_script(service);
    journal_path = service.journal_path();
  }
  const auto full_size = std::filesystem::file_size(journal_path);
  std::filesystem::resize_file(journal_path, full_size - 3);

  Service recovered(service_config(dir));
  const RecoveryReport report = recovered.recover();
  EXPECT_TRUE(report.journal_truncated);
  EXPECT_FALSE(report.damage.empty());
  EXPECT_LT(report.damage_offset, full_size);
  // The recovered service keeps serving: the torn command was never
  // acknowledged, so dropping it is correct, and new work proceeds.
  EXPECT_TRUE(recovered.execute("stats tenant=t0").ok);
  EXPECT_TRUE(
      recovered.execute("req tenant=t0 id=900 proc=0 prio=0").ok);
}

TEST(SvcServer, SnapshotFoldsTheJournalAndBumpsTheEpoch) {
  TempDir dir("svc_epoch");
  std::string golden_stats;
  {
    Service service(service_config(dir));
    service.start_fresh();
    golden_stats = run_script(service);
    EXPECT_EQ(service.epoch(), 0u);
    EXPECT_EQ(service.snapshot(), 1u);
    EXPECT_EQ(service.epoch(), 1u);
    // Post-snapshot traffic lands in the epoch-1 journal.
    EXPECT_TRUE(
        service.execute("req tenant=t0 id=500 proc=2 prio=1").ok);
    ASSERT_TRUE(service.commit());
  }
  Service recovered(service_config(dir));
  const RecoveryReport report = recovered.recover();
  EXPECT_TRUE(report.had_snapshot);
  EXPECT_EQ(report.snapshot_epoch, 1u);
  EXPECT_EQ(report.journal_epoch, 1u);
  EXPECT_FALSE(report.journal_stale);
  EXPECT_EQ(report.replayed, 1u);  // Only the post-snapshot request.
  EXPECT_EQ(recovered.execute("req tenant=t0 id=500 proc=2 prio=1").body,
            "status=duplicate");
}

TEST(SvcServer, StaleJournalIsDiscardedByTheEpochRule) {
  TempDir dir("svc_stale");
  std::string journal_path;
  std::string stats_after_snapshot;
  std::string stale_journal;
  {
    Service service(service_config(dir));
    service.start_fresh();
    run_script(service);
    journal_path = service.journal_path();
    {
      std::ifstream in(journal_path, std::ios::binary);
      stale_journal.assign(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    }
    (void)service.snapshot();
    stats_after_snapshot = service.execute("stats tenant=t0").body;
  }
  // Crash window: snapshot.txt was renamed into place but the epoch-0
  // journal was never swapped. Its records are already folded into the
  // snapshot; replaying them would double-execute.
  {
    std::ofstream out(journal_path, std::ios::binary | std::ios::trunc);
    out.write(stale_journal.data(),
              static_cast<std::streamsize>(stale_journal.size()));
  }
  Service recovered(service_config(dir));
  const RecoveryReport report = recovered.recover();
  EXPECT_TRUE(report.journal_stale);
  EXPECT_EQ(report.replayed, 0u);
  EXPECT_EQ(recovered.execute("stats tenant=t0").body,
            stats_after_snapshot);
}

TEST(SvcServer, JournalWithoutItsSnapshotIsUnrecoverable) {
  TempDir dir("svc_orphan");
  {
    Service service(service_config(dir));
    service.start_fresh();
    run_script(service);
    (void)service.snapshot();  // Journal now at epoch 1.
    std::filesystem::remove(service.snapshot_path());
  }
  Service recovered(service_config(dir));
  EXPECT_THROW((void)recovered.recover(), RecoveryError);
}

// --- live server over the Unix socket ------------------------------------

struct ServerFixture {
  TempDir dir;
  std::string socket_path;
  ServerConfig config;
  std::unique_ptr<Server> server;
  std::thread thread;
  int exit_code = -1;

  explicit ServerFixture(const std::string& name, std::int32_t watchdog_ms)
      : dir("srv_" + name),
        socket_path(dir.path + "/rsind.sock") {
    config.socket_path = socket_path;
    config.service.dir = dir.path;
    config.service.pool_shards = 2;
    config.watchdog_ms = watchdog_ms;
  }
  ~ServerFixture() {
    if (thread.joinable()) {
      stop();
    }
  }

  void start(bool recover) {
    server = std::make_unique<Server>(config);
    thread = std::thread(
        [this, recover] { exit_code = server->run(recover); });
  }

  /// Triggers the drain exactly like a SIGTERM handler would.
  int stop() {
    const char byte = 's';
    EXPECT_EQ(::write(server->wake_fd(), &byte, 1), 1);
    thread.join();
    return exit_code;
  }

  Client client() {
    ClientOptions options;
    options.socket_path = socket_path;
    options.timeout_ms = 5000;
    options.retries = 12;
    options.backoff_ms = 10;
    return Client(options);
  }
};

TEST(SvcServer, PingSnapshotAndGracefulDrain) {
  ServerFixture fixture("ping", /*watchdog_ms=*/0);
  fixture.start(/*recover=*/false);
  {
    Client client = fixture.client();
    EXPECT_EQ(client.request("ping").body, "pong");
    EXPECT_TRUE(client
                    .request("tenant name=t0 topology=omega n=8 seed=1 "
                             "scheduler=dinic")
                    .ok);
    EXPECT_EQ(client.request("req tenant=t0 id=1 proc=0 prio=0").body,
              "status=admitted");
    EXPECT_TRUE(client.request("snapshot").ok);
    const Response metrics = client.request("metrics tenant=t0");
    EXPECT_TRUE(metrics.ok);
    EXPECT_FALSE(metrics.extra.empty());
  }
  EXPECT_EQ(fixture.stop(), 0);
  // The drain unlinks the socket and leaves a complete journal+snapshot.
  EXPECT_FALSE(std::filesystem::exists(fixture.socket_path));
  EXPECT_TRUE(std::filesystem::exists(fixture.dir.path + "/snapshot.txt"));
}

TEST(SvcServer, RecoveredServerServesNewClientsImmediately) {
  ServerFixture fixture("reopen", /*watchdog_ms=*/0);
  fixture.start(false);
  {
    Client client = fixture.client();
    ASSERT_TRUE(client
                    .request("tenant name=t0 topology=omega n=8 seed=3 "
                             "scheduler=breaker")
                    .ok);
    for (const std::string& line : script()) {
      if (line.rfind("tenant ", 0) == 0) continue;
      ASSERT_TRUE(client.request(line).ok) << line;
    }
  }
  ASSERT_EQ(fixture.stop(), 0);

  // Restart in recovery mode; clients race the startup (the Client's
  // retry/backoff loop absorbs the window before the socket exists) and
  // immediately exercise both the duplicate path and fresh admissions.
  fixture.start(/*recover=*/true);
  std::vector<std::thread> clients;
  std::vector<int> failures(3, 0);
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&fixture, &failures, c] {
      Client client = fixture.client();
      const Response dup =
          client.request("req tenant=t0 id=1 proc=0 prio=0");
      if (!dup.ok || dup.body != "status=duplicate") ++failures[c];
      const Response fresh = client.request(
          "req tenant=t0 id=" + std::to_string(1000 + c) + " proc=1");
      if (!fresh.ok || fresh.body != "status=admitted") ++failures[c];
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures, std::vector<int>({0, 0, 0}));
  EXPECT_EQ(fixture.stop(), 0);
}

TEST(SvcServer, WatchdogTripsTheDegradationLadder) {
  ServerFixture fixture("watchdog", /*watchdog_ms=*/50);
  fixture.start(false);
  Client client = fixture.client();
  ASSERT_TRUE(client
                  .request("tenant name=t0 topology=omega n=8 seed=1 "
                           "scheduler=breaker")
                  .ok);
  // inject-delay stalls the command path past the watchdog threshold; the
  // trip is journaled at the command boundary and echoed in the reply.
  const Response slow = client.request("inject-delay tenant=t0 ms=200");
  ASSERT_TRUE(slow.ok);
  EXPECT_NE(slow.body.find("watchdog-level=1"), std::string::npos)
      << slow.body;
  const Response tenants = client.request("tenants");
  ASSERT_EQ(tenants.extra.size(), 1u);
  EXPECT_NE(tenants.extra[0].find("level=1"), std::string::npos)
      << tenants.extra[0];
  EXPECT_EQ(fixture.stop(), 0);
}

TEST(SvcServer, ConcurrentClientsShareOneGroupCommit) {
  ServerFixture fixture("hammer", /*watchdog_ms=*/0);
  fixture.start(false);
  {
    Client setup = fixture.client();
    ASSERT_TRUE(setup
                    .request("tenant name=t0 topology=omega n=8 seed=5 "
                             "scheduler=breaker")
                    .ok);
  }
  constexpr int kClients = 4;
  constexpr int kPerClient = 30;
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&fixture, &failures, c] {
      Client client = fixture.client();
      for (int i = 0; i < kPerClient; ++i) {
        const std::uint64_t id =
            1 + static_cast<std::uint64_t>(c) * kPerClient +
            static_cast<std::uint64_t>(i);
        const std::string line =
            i % 5 == 4
                ? "cycle tenant=t0 id=" + std::to_string(100000 + id)
                : "req tenant=t0 id=" + std::to_string(id) +
                      " proc=" + std::to_string(id % 8) + " prio=0";
        if (!client.request(line).ok) ++failures[c];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures, std::vector<int>(kClients, 0));

  Client check = fixture.client();
  const Response stats = check.request("stats tenant=t0");
  ASSERT_TRUE(stats.ok);
  const std::string pre_drain = stats.body;
  ASSERT_EQ(fixture.stop(), 0);

  // Everything those clients were acknowledged for survives the restart.
  fixture.start(/*recover=*/true);
  Client after = fixture.client();
  EXPECT_EQ(after.request("stats tenant=t0").body, pre_drain);
  EXPECT_EQ(fixture.stop(), 0);
}

}  // namespace
}  // namespace rsin::svc
