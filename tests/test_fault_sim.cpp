// Discrete-event simulation under fault injection: deterministic replay,
// mid-service teardown with retry/backoff, drop timeouts, availability and
// degraded-mode metrics.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/scheduler.hpp"
#include "sim/system_sim.hpp"
#include "token/token_machine.hpp"
#include "topo/builders.hpp"

namespace rsin {
namespace {

sim::SystemConfig faulty_config() {
  sim::SystemConfig config;
  config.arrival_rate = 0.8;
  config.warmup_time = 20.0;
  config.measure_time = 300.0;
  config.faults.link_mttf = 15.0;
  config.faults.link_mttr = 2.0;
  config.seed = 7;
  return config;
}

TEST(FaultSim, FaultFreeRunReportsTrivialFaultMetrics) {
  const topo::Network net = topo::make_named("omega", 8);
  core::MaxFlowScheduler scheduler;
  sim::SystemConfig config;
  config.measure_time = 100.0;
  const sim::SystemMetrics metrics =
      sim::simulate_system(net, scheduler, config);
  EXPECT_DOUBLE_EQ(metrics.availability, 1.0);
  EXPECT_EQ(metrics.faults_injected, 0);
  EXPECT_EQ(metrics.repairs, 0);
  EXPECT_EQ(metrics.circuits_torn_down, 0);
  EXPECT_EQ(metrics.retries, 0);
  EXPECT_EQ(metrics.tasks_dropped, 0);
  EXPECT_DOUBLE_EQ(metrics.degraded_cycle_fraction, 0.0);
}

TEST(FaultSim, InjectedRunCompletesDeterministicallyWithRetries) {
  // Acceptance criterion: a seeded fault-injection run on an 8x8 Omega
  // completes deterministically with nonzero retries and zero hangs.
  const topo::Network net = topo::make_named("omega", 8);
  core::MaxFlowScheduler scheduler;
  const sim::SystemConfig config = faulty_config();
  const sim::SystemMetrics first =
      sim::simulate_system(net, scheduler, config);
  EXPECT_GT(first.faults_injected, 0);
  EXPECT_GT(first.repairs, 0);
  EXPECT_GT(first.retries, 0);
  EXPECT_GT(first.circuits_torn_down, 0);
  EXPECT_GT(first.tasks_completed, 0);
  EXPECT_LT(first.availability, 1.0);
  EXPECT_GT(first.availability, 0.0);

  core::MaxFlowScheduler scheduler_again;
  const sim::SystemMetrics second =
      sim::simulate_system(net, scheduler_again, config);
  EXPECT_EQ(first.tasks_arrived, second.tasks_arrived);
  EXPECT_EQ(first.tasks_completed, second.tasks_completed);
  EXPECT_EQ(first.retries, second.retries);
  EXPECT_EQ(first.circuits_torn_down, second.circuits_torn_down);
  EXPECT_DOUBLE_EQ(first.availability, second.availability);
  EXPECT_DOUBLE_EQ(first.mean_response_time, second.mean_response_time);
}

TEST(FaultSim, PermanentFaultsNeverRepairAndDegradeAvailability) {
  const topo::Network net = topo::make_named("omega", 8);
  core::MaxFlowScheduler scheduler;
  sim::SystemConfig config = faulty_config();
  config.faults.transient = false;
  const sim::SystemMetrics metrics =
      sim::simulate_system(net, scheduler, config);
  EXPECT_GT(metrics.faults_injected, 0);
  EXPECT_EQ(metrics.repairs, 0);
  EXPECT_LT(metrics.availability, 1.0);

  // With repairs enabled under the same failure rate, availability is
  // strictly better.
  core::MaxFlowScheduler scheduler_transient;
  const sim::SystemMetrics transient =
      sim::simulate_system(net, scheduler_transient, faulty_config());
  EXPECT_GT(transient.availability, metrics.availability);
}

TEST(FaultSim, DropTimeoutAbandonsStarvedTasks) {
  const topo::Network net = topo::make_named("omega", 8);
  core::MaxFlowScheduler scheduler;
  sim::SystemConfig config = faulty_config();
  // Kill most of the fabric permanently and give tasks a short patience.
  config.faults.link_mttf = 2.0;
  config.faults.transient = false;
  config.drop_timeout = 5.0;
  const sim::SystemMetrics metrics =
      sim::simulate_system(net, scheduler, config);
  EXPECT_GT(metrics.tasks_dropped, 0);
  EXPECT_LT(metrics.availability, 0.8);
}

/// Primary that always throws: every cycle must take the degraded path.
class AlwaysFailingScheduler final : public core::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "always-fails"; }
  core::ScheduleResult schedule(const core::Problem&) override {
    throw std::runtime_error("solver failure");
  }
};

TEST(FaultSim, FallbackKeepsTheSystemRunningAndReportsDegradedCycles) {
  const topo::Network net = topo::make_named("omega", 8);
  core::FallbackScheduler scheduler(
      std::make_unique<AlwaysFailingScheduler>());
  sim::SystemConfig config;
  config.measure_time = 100.0;
  const sim::SystemMetrics metrics =
      sim::simulate_system(net, scheduler, config);
  EXPECT_GT(metrics.tasks_completed, 0);
  EXPECT_GT(metrics.scheduling_cycles, 0);
  EXPECT_DOUBLE_EQ(metrics.degraded_cycle_fraction, 1.0);
}

TEST(FaultSim, HealthyFallbackReportsNoDegradedCycles) {
  const topo::Network net = topo::make_named("omega", 8);
  core::FallbackScheduler scheduler(
      std::make_unique<core::MaxFlowScheduler>());
  sim::SystemConfig config;
  config.measure_time = 100.0;
  const sim::SystemMetrics metrics =
      sim::simulate_system(net, scheduler, config);
  EXPECT_GT(metrics.tasks_completed, 0);
  EXPECT_DOUBLE_EQ(metrics.degraded_cycle_fraction, 0.0);
}

TEST(FaultSim, TokenSchedulerSurvivesFaultInjection) {
  // The distributed machine (fault-aware) drives the DES through the same
  // fault stream without tripping its watchdog.
  const topo::Network net = topo::make_named("omega", 8);
  token::TokenScheduler scheduler;
  sim::SystemConfig config = faulty_config();
  config.measure_time = 150.0;
  const sim::SystemMetrics metrics =
      sim::simulate_system(net, scheduler, config);
  EXPECT_GT(metrics.tasks_completed, 0);
  EXPECT_GT(metrics.retries, 0);
}

}  // namespace
}  // namespace rsin
