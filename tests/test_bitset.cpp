// util::BitSet (word-packed, windowed clear, lowbit iteration) and
// util::Arena (grow-only bump scratch) — the compact-representation
// primitives of DESIGN.md §11.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/arena.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace {

using rsin::util::Arena;
using rsin::util::BitSet;

std::vector<std::size_t> collect(const BitSet& bits) {
  std::vector<std::size_t> out;
  bits.for_each_set([&](std::size_t i) { out.push_back(i); });
  return out;
}

TEST(BitSet, SetTestResetRoundTrip) {
  BitSet bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_FALSE(bits.any());
  EXPECT_EQ(bits.count(), 0u);
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_FALSE(bits.test(63));
  EXPECT_EQ(bits.count(), 3u);
  bits.reset(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(BitSet, WordBoundarySizes63And64And65) {
  for (const std::size_t n : {63u, 64u, 65u}) {
    BitSet bits(n);
    for (std::size_t i = 0; i < n; ++i) bits.set(i);
    EXPECT_EQ(bits.count(), n) << "n=" << n;
    // Every bit individually visible and iterated exactly once.
    std::vector<std::size_t> expect(n);
    std::iota(expect.begin(), expect.end(), 0u);
    EXPECT_EQ(collect(bits), expect) << "n=" << n;
    bits.reset(n - 1);
    EXPECT_EQ(bits.count(), n - 1) << "n=" << n;
    EXPECT_EQ(bits.find_first(), 0u);
    bits.clear();
    EXPECT_FALSE(bits.any()) << "n=" << n;
    EXPECT_EQ(bits.find_first(), n) << "n=" << n;
  }
}

TEST(BitSet, ForEachSetIsAscendingLowbitOrder) {
  BitSet bits(400);
  const std::vector<std::size_t> want = {3, 62, 63, 64, 65, 127, 128, 321};
  // Insert out of order; iteration must come back sorted.
  bits.set(128);
  bits.set(3);
  bits.set(65);
  bits.set(63);
  bits.set(321);
  bits.set(62);
  bits.set(64);
  bits.set(127);
  EXPECT_EQ(collect(bits), want);
  EXPECT_EQ(bits.find_first(), 3u);
}

TEST(BitSet, WindowedClearDropsEverySetBit) {
  BitSet bits(1 << 12);
  rsin::util::Rng rng(20260807);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::size_t> set_bits;
    const auto count = rng.uniform_int(0, 40);
    for (std::int64_t i = 0; i < count; ++i) {
      const auto bit = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bits.size()) - 1));
      bits.set(bit);
      set_bits.push_back(bit);
    }
    for (const std::size_t bit : set_bits) EXPECT_TRUE(bits.test(bit));
    bits.clear();  // windowed: must still erase everything
    EXPECT_FALSE(bits.any()) << "round " << round;
    EXPECT_EQ(bits.count(), 0u);
    for (const std::size_t bit : set_bits) EXPECT_FALSE(bits.test(bit));
  }
}

TEST(BitSet, BulkOrAndAndNotMatchScalar) {
  constexpr std::size_t kN = 300;
  rsin::util::Rng rng(777);
  for (int round = 0; round < 20; ++round) {
    BitSet a(kN);
    BitSet b(kN);
    std::vector<bool> ra(kN, false);
    std::vector<bool> rb(kN, false);
    for (std::size_t i = 0; i < kN; ++i) {
      if (rng.bernoulli(0.3)) {
        a.set(i);
        ra[i] = true;
      }
      if (rng.bernoulli(0.3)) {
        b.set(i);
        rb[i] = true;
      }
    }
    BitSet u = a;
    u |= b;
    BitSet n = a;
    n &= b;
    BitSet d = a;
    d.and_not(b);
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(u.test(i), ra[i] || rb[i]) << i;
      EXPECT_EQ(n.test(i), ra[i] && rb[i]) << i;
      EXPECT_EQ(d.test(i), ra[i] && !rb[i]) << i;
    }
  }
}

TEST(BitSet, ResizePreservesLowBitsAndZeroesNewOnes) {
  BitSet bits(70);
  bits.set(0);
  bits.set(69);
  bits.resize(200);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(69));
  EXPECT_FALSE(bits.test(70));
  EXPECT_FALSE(bits.test(199));
  bits.set(199);
  bits.resize(70);  // shrink must mask the tail so count() stays exact
  EXPECT_EQ(bits.count(), 2u);
  bits.resize(200);
  EXPECT_FALSE(bits.test(199));
}

TEST(BitSet, SwapExchangesContents) {
  BitSet a(100);
  BitSet b(200);
  a.set(7);
  b.set(150);
  swap(a, b);
  EXPECT_EQ(a.size(), 200u);
  EXPECT_TRUE(a.test(150));
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(b.test(7));
}

TEST(BitSet, LowbitHelper) {
  EXPECT_EQ(BitSet::lowbit(0b1011000u), 0b0001000u);
  EXPECT_EQ(BitSet::lowbit(1), 1u);
  EXPECT_EQ(BitSet::lowbit(0), 0u);
  EXPECT_EQ(BitSet::lowbit(std::uint64_t{1} << 63), std::uint64_t{1} << 63);
}

// --- arena ----------------------------------------------------------------

TEST(BitSetArena, SpansStayValidAcrossGrowth) {
  Arena arena;
  const auto first = arena.alloc<std::int64_t>(16);
  for (std::size_t i = 0; i < first.size(); ++i) {
    first[i] = static_cast<std::int64_t>(i);
  }
  // Force several growth chunks; the first span must not move.
  for (int i = 0; i < 8; ++i) {
    const auto big = arena.alloc<std::int64_t>(1 << 12);
    big[0] = i;
  }
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], static_cast<std::int64_t>(i));
  }
}

TEST(BitSetArena, ResetReusesWithoutGrowing) {
  Arena arena;
  (void)arena.alloc_zeroed<std::uint32_t>(1000);
  (void)arena.alloc<std::size_t>(500);
  const std::size_t chunks = arena.chunk_count();
  const std::size_t capacity = arena.capacity_bytes();
  for (int cycle = 0; cycle < 100; ++cycle) {
    arena.reset();
    const auto a = arena.alloc_zeroed<std::uint32_t>(1000);
    const auto b = arena.alloc<std::size_t>(500);
    EXPECT_EQ(a.size(), 1000u);
    EXPECT_EQ(b.size(), 500u);
    for (const std::uint32_t x : a) EXPECT_EQ(x, 0u);
  }
  EXPECT_EQ(arena.chunk_count(), chunks);
  EXPECT_EQ(arena.capacity_bytes(), capacity);
}

TEST(BitSetArena, AlignmentIsRespectedAcrossMixedTypes) {
  Arena arena;
  for (int i = 0; i < 50; ++i) {
    const auto bytes = arena.alloc<std::uint8_t>(static_cast<std::size_t>(i) % 7 + 1);
    (void)bytes;
    const auto wide = arena.alloc<std::int64_t>(3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(wide.data()) % alignof(std::int64_t),
              0u);
    wide[0] = i;  // must not fault or tear
  }
}

TEST(BitSetArena, CopiesStartEmptyAndZeroLengthIsFine) {
  Arena arena;
  (void)arena.alloc<std::uint32_t>(64);
  Arena copy = arena;  // scratch is transient: copies start empty
  EXPECT_EQ(copy.chunk_count(), 0u);
  const auto none = copy.alloc<std::uint32_t>(0);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(copy.chunk_count(), 0u);  // zero-length alloc allocates nothing
}

}  // namespace
