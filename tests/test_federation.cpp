// Federation coordinator tests (fed/federation.hpp): tenant-affinity
// routing, spill/retry through coflow admission, cluster kill / rejoin /
// partition fault domains, labeled registry export, and the standalone
// differential replay — each cluster's schedule must be bitwise
// reproducible from its recorded inputs alone, proving the federation adds
// no hidden coupling between clusters.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fed/cluster.hpp"
#include "fed/federation.hpp"
#include "obs/metrics.hpp"
#include "sim/federated.hpp"

namespace rsin {
namespace {

fed::FederationConfig small_config(std::int32_t clusters, bool spill) {
  fed::FederationConfig config;
  config.clusters = clusters;
  config.cluster.topology = "omega";
  config.cluster.n = 4;
  config.cluster.scheduler = "warm";
  config.uplink_capacity = 2;
  config.spill = spill;
  config.spill_after = 1;
  config.seed = 7;
  return config;
}

fed::Task make_task(std::uint64_t id, std::int32_t tenant,
                    std::int32_t processor, std::int64_t birth,
                    std::int32_t service = 2) {
  fed::Task task;
  task.id = id;
  task.tenant = tenant;
  task.processor = processor;
  task.service_cycles = service;
  task.birth_cycle = birth;
  return task;
}

/// Submits `per_cluster[c]` tasks to each cluster c every cycle (tenant ==
/// cluster id, processors rotating), for `cycles` cycles. Deterministic.
void drive(fed::Federation& federation,
           const std::vector<std::int32_t>& per_cluster, std::int64_t cycles) {
  std::uint64_t next_id = 1;
  for (std::int64_t cycle = 0; cycle < cycles; ++cycle) {
    for (std::size_t c = 0; c < per_cluster.size(); ++c) {
      for (std::int32_t i = 0; i < per_cluster[c]; ++i) {
        const auto tenant = static_cast<std::int32_t>(c);
        const auto proc = static_cast<std::int32_t>(
            (cycle + i) % federation.cluster(tenant).network().processor_count());
        (void)federation.submit(
            make_task(next_id++, tenant, proc, federation.clock()));
      }
    }
    federation.run_cycle();
  }
}

std::int64_t counter_value(const obs::Registry::Snapshot& snap,
                           const std::string& name) {
  for (const auto& [counter_name, value] : snap.counters) {
    if (counter_name == name) return value;
  }
  return -1;
}

TEST(Federation, RoutesTenantsToHomeClusters) {
  fed::Federation federation(small_config(3, true));
  // Tenants 0..5: homes 0,1,2,0,1,2.
  for (std::int32_t tenant = 0; tenant < 6; ++tenant) {
    EXPECT_EQ(federation.home_of(tenant), tenant % 3);
    (void)federation.submit(
        make_task(static_cast<std::uint64_t>(tenant) + 1, tenant, 0, 0));
  }
  for (std::int32_t c = 0; c < 3; ++c) {
    EXPECT_EQ(federation.cluster(c).stats().arrivals, 2)
        << "cluster " << c << " should hold its two tenants' arrivals";
  }
}

TEST(Federation, SpillServesBacklogOnIdleSiblings) {
  // Cluster 0 offered ~2x its fabric, cluster 1 idle: with spill the
  // federation must move overflow across the uplinks and grant more in
  // total than two isolated fabrics would.
  const std::vector<std::int32_t> load = {8, 0};
  fed::Federation with_spill(small_config(2, true));
  drive(with_spill, load, 60);
  fed::Federation no_spill(small_config(2, false));
  drive(no_spill, load, 60);

  EXPECT_GT(with_spill.cluster(1).stats().spill_in, 0)
      << "idle sibling never received spilled work";
  EXPECT_GT(with_spill.stats().spill_moved, 0);
  EXPECT_GT(with_spill.total_granted(), no_spill.total_granted())
      << "spill failed to raise total throughput under imbalance";
  EXPECT_EQ(no_spill.stats().spill_moved, 0);
}

TEST(Federation, KillingOneClusterLeavesSiblingSchedulesBitwiseIntact) {
  // With spill off, sibling clusters of a killed cluster must schedule
  // bitwise exactly as in a run where the kill never happened: fault
  // domains share nothing.
  const std::vector<std::int32_t> load = {3, 3, 3};
  fed::Federation baseline(small_config(3, false));
  drive(baseline, load, 50);

  fed::Federation killed(small_config(3, false));
  {
    std::uint64_t next_id = 1;
    for (std::int64_t cycle = 0; cycle < 50; ++cycle) {
      if (cycle == 20) killed.kill_cluster(0);
      for (std::size_t c = 0; c < load.size(); ++c) {
        for (std::int32_t i = 0; i < load[c]; ++i) {
          const auto tenant = static_cast<std::int32_t>(c);
          const auto proc = static_cast<std::int32_t>(
              (cycle + i) % killed.cluster(tenant).network().processor_count());
          (void)killed.submit(
              make_task(next_id++, tenant, proc, killed.clock()));
        }
      }
      killed.run_cycle();
    }
  }
  EXPECT_EQ(killed.cluster(1).schedule_hash(),
            baseline.cluster(1).schedule_hash());
  EXPECT_EQ(killed.cluster(2).schedule_hash(),
            baseline.cluster(2).schedule_hash());
  EXPECT_LT(killed.cluster(0).stats().granted,
            baseline.cluster(0).stats().granted)
      << "the killed cluster should have lost throughput";
  EXPECT_GT(killed.cluster(1).stats().granted, 0);
}

TEST(Federation, StandaloneReplayReproducesEveryClusterBitwise) {
  // The differential gate: record every cluster's inputs during a run with
  // active spilling, a mid-run cluster loss, and a rejoin; replaying each
  // cluster's inputs into a standalone Cluster must reproduce its schedule
  // hash exactly.
  fed::FederationConfig config = small_config(3, true);
  fed::Federation federation(config);
  federation.record_inputs(true);
  const std::vector<std::int32_t> load = {7, 1, 1};  // skew onto cluster 0
  std::uint64_t next_id = 1;
  const std::int64_t cycles = 60;
  for (std::int64_t cycle = 0; cycle < cycles; ++cycle) {
    if (cycle == 25) federation.kill_cluster(2);
    if (cycle == 40) federation.rejoin_cluster(2);
    for (std::size_t c = 0; c < load.size(); ++c) {
      for (std::int32_t i = 0; i < load[c]; ++i) {
        const auto tenant = static_cast<std::int32_t>(c);
        const auto proc = static_cast<std::int32_t>(
            (cycle + i) %
            federation.cluster(tenant).network().processor_count());
        (void)federation.submit(
            make_task(next_id++, tenant, proc, federation.clock()));
      }
    }
    federation.run_cycle();
  }
  ASSERT_GT(federation.stats().spill_moved, 0)
      << "scenario must actually exercise cross-cluster spills";
  for (std::int32_t c = 0; c < federation.clusters(); ++c) {
    const fed::Cluster& original = federation.cluster(c);
    const std::unique_ptr<fed::Cluster> replayed =
        fed::replay_cluster(original.config(), original.inputs(), cycles);
    EXPECT_EQ(replayed->schedule_hash(), original.schedule_hash())
        << "cluster " << c << " schedule is not a pure function of its inputs";
    EXPECT_EQ(replayed->stats().granted, original.stats().granted);
  }
}

TEST(Federation, RejoinRestoresKilledClusterThroughput) {
  fed::Federation federation(small_config(2, false));
  const std::vector<std::int32_t> load = {2, 2};
  std::uint64_t next_id = 1;
  std::int64_t granted_at_rejoin = -1;
  for (std::int64_t cycle = 0; cycle < 60; ++cycle) {
    if (cycle == 10) federation.kill_cluster(0);
    if (cycle == 30) {
      federation.rejoin_cluster(0);
      granted_at_rejoin = federation.cluster(0).stats().granted;
    }
    for (std::size_t c = 0; c < load.size(); ++c) {
      for (std::int32_t i = 0; i < load[c]; ++i) {
        const auto tenant = static_cast<std::int32_t>(c);
        (void)federation.submit(make_task(
            next_id++, tenant,
            static_cast<std::int32_t>((cycle + i) % 4), federation.clock()));
      }
    }
    federation.run_cycle();
  }
  EXPECT_TRUE(federation.cluster(0).alive());
  EXPECT_GT(federation.cluster(0).stats().granted, granted_at_rejoin)
      << "rejoined cluster never granted again";
  EXPECT_GT(federation.cluster(0).stats().lost_inflight, 0)
      << "kill with work in flight should count losses";
}

TEST(Federation, PartitionBlocksSpillUntilHealed) {
  fed::Federation federation(small_config(2, true));
  federation.partition_cluster(0);
  const std::vector<std::int32_t> overload = {8, 0};
  drive(federation, overload, 30);
  EXPECT_EQ(federation.stats().spill_moved, 0)
      << "partitioned cluster must not spill over severed uplinks";
  EXPECT_GT(federation.cluster(0).stats().granted, 0)
      << "partition is an uplink event; the fabric must keep scheduling";

  federation.heal_cluster(0);
  drive(federation, overload, 30);
  EXPECT_GT(federation.stats().spill_moved, 0)
      << "healing the partition must let the backlog spill";
}

TEST(Federation, ExportAggregatesAndLabelsPerClusterRegistries) {
  fed::Federation federation(small_config(2, true));
  drive(federation, {4, 1}, 30);
  obs::Registry out;
  federation.export_registry(out);
  const obs::Registry::Snapshot snap = out.snapshot();

  const std::int64_t granted0 = federation.cluster(0).stats().granted;
  const std::int64_t granted1 = federation.cluster(1).stats().granted;
  EXPECT_EQ(counter_value(snap, "fed.cluster.granted"), granted0 + granted1)
      << "aggregate view must fold same-name instruments across clusters";
  EXPECT_EQ(counter_value(snap, "fed.c0.fed.cluster.granted"), granted0);
  EXPECT_EQ(counter_value(snap, "fed.c1.fed.cluster.granted"), granted1);
  EXPECT_EQ(counter_value(snap, "fed.cycles"), 30);
  EXPECT_EQ(counter_value(snap, "fed.admission.moved"),
            federation.stats().spill_moved);
}

TEST(Federation, DeadClusterCyclesAreNoopsButSiblingsKeepServing) {
  fed::Federation federation(small_config(3, true));
  federation.kill_cluster(1);
  drive(federation, {2, 2, 2}, 40);
  EXPECT_EQ(federation.cluster(1).stats().granted, 0);
  EXPECT_GT(federation.cluster(0).stats().granted, 0);
  EXPECT_GT(federation.cluster(2).stats().granted, 0);
  // Cluster 1's queued tenants were eligible to spill to live siblings.
  EXPECT_GT(federation.cluster(1).stats().spill_out, 0)
      << "a dead cluster's backlog should drain through the uplinks";
}

TEST(Federation, CommonRandomNumbersKeepWorkloadsComparable) {
  // The sim harness must offer the *identical* workload to every discipline
  // under comparison — spill on, spill off, and the flat baseline — so the
  // curves differ only by discipline.
  sim::FederatedScenario scenario;
  scenario.federation = small_config(2, true);
  // Skewed but not saturated: cluster 0 runs hot while cluster 1 keeps
  // slack, so spilling has headroom to exploit.
  scenario.cycles = 120;
  scenario.arrival_rate = 0.22;
  scenario.zipf_s = 1.2;
  scenario.seed = 42;

  const sim::FederatedMetrics spilled = sim::run_federated_experiment(scenario);
  sim::FederatedScenario isolated = scenario;
  isolated.federation.spill = false;
  const sim::FederatedMetrics no_spill =
      sim::run_federated_experiment(isolated);
  const sim::FederatedMetrics flat = sim::run_flat_baseline(scenario);

  EXPECT_EQ(spilled.offered, no_spill.offered);
  EXPECT_EQ(spilled.offered, flat.offered);
  ASSERT_GT(spilled.offered, 0);
  // Under tenant skew, spilling must not lose throughput vs isolation, and
  // pooling every resource in one flat fabric is the upper reference.
  EXPECT_GE(spilled.granted, no_spill.granted);
  EXPECT_GT(flat.grant_rate, 0.0);
  // Re-running the same scenario is bitwise reproducible.
  const sim::FederatedMetrics again = sim::run_federated_experiment(scenario);
  EXPECT_EQ(again.granted, spilled.granted);
  ASSERT_EQ(again.clusters.size(), spilled.clusters.size());
  for (std::size_t c = 0; c < again.clusters.size(); ++c) {
    EXPECT_EQ(again.clusters[c].schedule_hash,
              spilled.clusters[c].schedule_hash);
  }
}

TEST(Federation, ScenarioValidationRejectsNonsense) {
  sim::FederatedScenario scenario;
  scenario.federation = small_config(2, true);
  scenario.cycles = 0;
  EXPECT_THROW(sim::run_federated_experiment(scenario), std::invalid_argument);
  scenario.cycles = 10;
  scenario.kill_cluster = 5;
  EXPECT_THROW(sim::run_federated_experiment(scenario), std::invalid_argument);
}

}  // namespace
}  // namespace rsin
