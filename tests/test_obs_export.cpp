// Exporter goldens: Prometheus text shape, JSON round-trip through the
// bundled obs::json parser, and parser rejection of malformed input.
#include <gtest/gtest.h>

#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace rsin::obs {
namespace {

void populate(Registry& registry) {
  registry.counter("flow.solves").add(42);
  registry.gauge("sim.queue-depth").set(3.5);
  Histogram& histogram = registry.histogram("solve_us", {1.0, 2.0, 4.0});
  histogram.observe(0.5);
  histogram.observe(2.0);
  histogram.observe(100.0);
}

TEST(ObsExport, PrometheusTextCarriesTypesAndCumulativeBuckets) {
  Registry registry;
  populate(registry);
  const std::string text = to_prometheus(registry.snapshot());
  // Dots and dashes sanitize to underscores; TYPE headers precede samples.
  EXPECT_NE(text.find("# TYPE flow_solves counter\nflow_solves 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sim_queue_depth gauge\nsim_queue_depth 3.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE solve_us histogram\n"), std::string::npos);
  // Prometheus buckets are cumulative: <=1 holds 1, <=2 holds 2, <=4 still
  // 2, +Inf holds all 3.
  EXPECT_NE(text.find("solve_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("solve_us_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("solve_us_bucket{le=\"4\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("solve_us_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("solve_us_sum 102.5\n"), std::string::npos);
  EXPECT_NE(text.find("solve_us_count 3\n"), std::string::npos);
}

TEST(ObsExport, JsonRoundTripsThroughTheBundledParser) {
  Registry registry;
  populate(registry);
  const std::string text = to_json(registry.snapshot());
  const json::Value doc = json::parse(text);
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("flow.solves").number, 42.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("sim.queue-depth").number, 3.5);
  const json::Value& h = doc.at("histograms").at("solve_us");
  EXPECT_DOUBLE_EQ(h.at("count").number, 3.0);
  EXPECT_DOUBLE_EQ(h.at("sum").number, 102.5);
  EXPECT_DOUBLE_EQ(h.at("min").number, 0.5);
  EXPECT_DOUBLE_EQ(h.at("max").number, 100.0);
  EXPECT_DOUBLE_EQ(h.at("p50").number, 2.0);
  // p99 observation sits in the overflow bucket -> observed max.
  EXPECT_DOUBLE_EQ(h.at("p99").number, 100.0);
  const json::Value& buckets = h.at("buckets");
  ASSERT_TRUE(buckets.is_array());
  ASSERT_EQ(buckets.array.size(), 4u);  // 3 bounds + overflow
  EXPECT_DOUBLE_EQ(buckets.array[0].at("le").number, 1.0);
  EXPECT_DOUBLE_EQ(buckets.array[0].at("count").number, 1.0);
  EXPECT_EQ(buckets.array[3].at("le").string, "+Inf");
  EXPECT_DOUBLE_EQ(buckets.array[3].at("count").number, 1.0);
}

TEST(ObsExport, EmptyRegistryExportsAreValid) {
  const Registry registry;
  const json::Value doc = json::parse(to_json(registry.snapshot()));
  EXPECT_TRUE(doc.at("counters").is_object());
  EXPECT_TRUE(doc.at("counters").object.empty());
  EXPECT_TRUE(doc.at("histograms").object.empty());
  EXPECT_EQ(to_prometheus(registry.snapshot()), "");
}

TEST(ObsExport, JsonParserHandlesTheFullValueGrammar) {
  const json::Value doc = json::parse(
      R"({"s":"a\"b\\c\nd","n":-1.5e2,"b":true,"x":null,)"
      R"("arr":[1,2,{"k":false}]})");
  EXPECT_EQ(doc.at("s").string, "a\"b\\c\nd");
  EXPECT_DOUBLE_EQ(doc.at("n").number, -150.0);
  EXPECT_TRUE(doc.at("b").boolean);
  EXPECT_EQ(doc.at("x").kind, json::Value::Kind::kNull);
  ASSERT_EQ(doc.at("arr").array.size(), 3u);
  EXPECT_FALSE(doc.at("arr").array[2].at("k").boolean);
  EXPECT_FALSE(doc.contains("missing"));
  EXPECT_THROW((void)doc.at("missing"), std::invalid_argument);
}

TEST(ObsExport, JsonParserRejectsMalformedDocuments) {
  EXPECT_THROW((void)json::parse(""), std::invalid_argument);
  EXPECT_THROW((void)json::parse("{"), std::invalid_argument);
  EXPECT_THROW((void)json::parse("{}{}"), std::invalid_argument);
  EXPECT_THROW((void)json::parse("{\"a\":}"), std::invalid_argument);
  EXPECT_THROW((void)json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW((void)json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW((void)json::parse("truely"), std::invalid_argument);
  EXPECT_THROW((void)json::parse("nan"), std::invalid_argument);
}

}  // namespace
}  // namespace rsin::obs
