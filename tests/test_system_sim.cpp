#include "sim/system_sim.hpp"

#include <gtest/gtest.h>

#include "core/hetero.hpp"
#include "token/token_machine.hpp"

#include "topo/builders.hpp"

namespace rsin::sim {
namespace {

SystemConfig quick_config() {
  SystemConfig config;
  config.arrival_rate = 0.3;
  config.transmission_time = 0.1;
  config.mean_service_time = 1.0;
  config.cycle_interval = 0.1;
  config.warmup_time = 20.0;
  config.measure_time = 200.0;
  config.seed = 17;
  return config;
}

TEST(SystemSim, ProducesSaneMetrics) {
  const topo::Network net = topo::make_omega(8);
  core::MaxFlowScheduler scheduler;
  const SystemMetrics metrics = simulate_system(net, scheduler, quick_config());
  EXPECT_GT(metrics.tasks_arrived, 0);
  EXPECT_GT(metrics.tasks_completed, 0);
  EXPECT_GT(metrics.scheduling_cycles, 0);
  EXPECT_GE(metrics.resource_utilization, 0.0);
  EXPECT_LE(metrics.resource_utilization, 1.0);
  EXPECT_GE(metrics.blocking_probability, 0.0);
  EXPECT_LE(metrics.blocking_probability, 1.0);
  EXPECT_GT(metrics.mean_response_time, 0.0);
  EXPECT_GE(metrics.mean_response_time, metrics.mean_wait_time);
}

TEST(SystemSim, DeterministicUnderSameSeed) {
  const topo::Network net = topo::make_omega(8);
  core::MaxFlowScheduler scheduler;
  const SystemMetrics a = simulate_system(net, scheduler, quick_config());
  const SystemMetrics b = simulate_system(net, scheduler, quick_config());
  EXPECT_EQ(a.tasks_arrived, b.tasks_arrived);
  EXPECT_DOUBLE_EQ(a.resource_utilization, b.resource_utilization);
  EXPECT_DOUBLE_EQ(a.mean_response_time, b.mean_response_time);
}

TEST(SystemSim, UtilizationGrowsWithLoad) {
  const topo::Network net = topo::make_omega(8);
  core::MaxFlowScheduler scheduler;
  SystemConfig light = quick_config();
  light.arrival_rate = 0.1;
  SystemConfig heavy = quick_config();
  heavy.arrival_rate = 0.8;
  const SystemMetrics light_metrics = simulate_system(net, scheduler, light);
  const SystemMetrics heavy_metrics = simulate_system(net, scheduler, heavy);
  EXPECT_GT(heavy_metrics.resource_utilization,
            light_metrics.resource_utilization);
}

TEST(SystemSim, LittleLawHoldsApproximately) {
  // Throughput * mean response ~= mean number in system. We check the
  // weaker sanity bound: completion rate close to arrival rate at a stable
  // operating point.
  const topo::Network net = topo::make_omega(8);
  core::MaxFlowScheduler scheduler;
  SystemConfig config = quick_config();
  config.arrival_rate = 0.3;
  config.measure_time = 400.0;
  const SystemMetrics metrics = simulate_system(net, scheduler, config);
  const double arrived = static_cast<double>(metrics.tasks_arrived);
  const double completed = static_cast<double>(metrics.tasks_completed);
  EXPECT_NEAR(completed / arrived, 1.0, 0.15);
}

TEST(SystemSim, OptimalSchedulerOutperformsGreedyUnderLoad) {
  const topo::Network net = topo::make_omega(8);
  core::MaxFlowScheduler optimal;
  core::GreedyScheduler greedy;
  SystemConfig config = quick_config();
  config.arrival_rate = 0.9;  // saturating load exposes blocking
  config.measure_time = 300.0;
  const SystemMetrics opt = simulate_system(net, optimal, config);
  const SystemMetrics grd = simulate_system(net, greedy, config);
  EXPECT_LE(opt.blocking_probability, grd.blocking_probability + 0.02);
}

TEST(SystemSim, HeterogeneousWorkloadRuns) {
  const topo::Network net = topo::make_omega(8);
  core::HeteroSequentialScheduler scheduler;
  SystemConfig config = quick_config();
  config.resource_types = 2;
  config.measure_time = 100.0;
  const SystemMetrics metrics = simulate_system(net, scheduler, config);
  EXPECT_GT(metrics.tasks_completed, 0);
}

TEST(SystemSim, PriorityWorkloadRuns) {
  const topo::Network net = topo::make_omega(8);
  core::MinCostScheduler scheduler;
  SystemConfig config = quick_config();
  config.priority_levels = 10;
  config.measure_time = 100.0;
  const SystemMetrics metrics = simulate_system(net, scheduler, config);
  EXPECT_GT(metrics.tasks_completed, 0);
}

TEST(SystemSim, BatchingReducesCycleCount) {
  const topo::Network net = topo::make_omega(8);
  core::MaxFlowScheduler scheduler;
  SystemConfig eager = quick_config();
  SystemConfig batched = quick_config();
  batched.min_pending_requests = 4;
  batched.max_batch_wait = 3.0;
  const SystemMetrics eager_metrics = simulate_system(net, scheduler, eager);
  const SystemMetrics batched_metrics =
      simulate_system(net, scheduler, batched);
  EXPECT_LT(batched_metrics.scheduling_cycles,
            eager_metrics.scheduling_cycles);
  EXPECT_GE(batched_metrics.mean_wait_time, eager_metrics.mean_wait_time);
  // Work still gets done: completions within 20% of the eager policy.
  EXPECT_NEAR(static_cast<double>(batched_metrics.tasks_completed),
              static_cast<double>(eager_metrics.tasks_completed),
              0.2 * static_cast<double>(eager_metrics.tasks_completed));
}

TEST(SystemSim, AntiStarvationOverrideFires) {
  // With an impossible batch threshold, only the max_batch_wait override
  // lets anything through — throughput must remain nonzero.
  const topo::Network net = topo::make_omega(8);
  core::MaxFlowScheduler scheduler;
  SystemConfig config = quick_config();
  config.min_pending_requests = 100;  // can never be met by 8 processors
  config.max_batch_wait = 1.0;
  const SystemMetrics metrics = simulate_system(net, scheduler, config);
  EXPECT_GT(metrics.tasks_completed, 0);
}

TEST(SystemSim, TokenSchedulerDrivesTheSystem) {
  const topo::Network net = topo::make_omega(8);
  token::TokenScheduler scheduler;
  SystemConfig config = quick_config();
  config.measure_time = 100.0;
  const SystemMetrics metrics = simulate_system(net, scheduler, config);
  EXPECT_GT(metrics.tasks_completed, 0);
}

TEST(SystemSim, PriorityWeightedSchedulerDifferentiatesWaits) {
  // Near saturation, the priority-weighted min-cost discipline must serve
  // the most urgent class faster than the least urgent one, while the
  // priority-blind max-flow scheduler stays roughly flat. Fixed seed: the
  // simulation is deterministic, so this is not flaky.
  const topo::Network net = topo::make_omega(8);
  SystemConfig config = quick_config();
  config.arrival_rate = 0.8;
  config.transmission_time = 0.05;
  config.cycle_interval = 0.05;
  config.warmup_time = 100.0;
  config.measure_time = 600.0;
  config.priority_levels = 4;
  config.seed = 3;

  core::MinCostScheduler weighted(flow::MinCostFlowAlgorithm::kSsp,
                                  core::BypassCostMode::kPriorityWeighted);
  const SystemMetrics with_priorities =
      simulate_system(net, weighted, config);
  ASSERT_EQ(with_priorities.mean_wait_by_priority.size(), 4u);
  EXPECT_LT(with_priorities.mean_wait_by_priority.at(4),
            with_priorities.mean_wait_by_priority.at(1));

  core::MaxFlowScheduler blind;
  const SystemMetrics without = simulate_system(net, blind, config);
  const double spread_blind = without.mean_wait_by_priority.at(1) -
                              without.mean_wait_by_priority.at(4);
  const double spread_weighted =
      with_priorities.mean_wait_by_priority.at(1) -
      with_priorities.mean_wait_by_priority.at(4);
  EXPECT_GT(spread_weighted, spread_blind)
      << "the weighted discipline must differentiate more than the blind one";
}

TEST(SystemSim, NoPriorityLevelsMeansNoPerPriorityStats) {
  const topo::Network net = topo::make_omega(8);
  core::MaxFlowScheduler scheduler;
  const SystemMetrics metrics = simulate_system(net, scheduler, quick_config());
  EXPECT_TRUE(metrics.mean_wait_by_priority.empty());
}

TEST(SystemSim, RejectsBadConfig) {
  const topo::Network net = topo::make_omega(4);
  core::MaxFlowScheduler scheduler;
  SystemConfig config = quick_config();
  config.arrival_rate = 0.0;
  EXPECT_THROW(simulate_system(net, scheduler, config), std::invalid_argument);
  config = quick_config();
  config.cycle_interval = 0.0;
  EXPECT_THROW(simulate_system(net, scheduler, config), std::invalid_argument);
}

}  // namespace
}  // namespace rsin::sim
