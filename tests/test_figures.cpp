// Reproductions of the paper's worked figures as executable tests.
//
// The paper's figures use its own port numbering for the 8x8 Omega (the
// footnote in Section II notes the numbering is immaterial for homogeneous
// resources); our generators use the standard Lawrie wiring, so scenario
// *content* (who blocks whom, what the optimum achieves) is asserted rather
// than the exact pairings drawn in the figures. Each test documents the
// correspondence.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/routing.hpp"
#include "core/scheduler.hpp"
#include "core/transform.hpp"
#include "flow/max_flow.hpp"
#include "token/token_machine.hpp"
#include "topo/builders.hpp"

namespace rsin {
namespace {

/// Fig. 2(a): 8x8 Omega; p1,p3,p5,p7,p8 request; r1,r3,r5,r7,r8 free;
/// circuits p2-r6 and p4-r4 already occupy links.
topo::Network fig2_network() {
  topo::Network net = topo::make_omega(8);
  const auto c1 = core::enumerate_free_paths(net, 1, 5);  // p2 -> r6
  const auto c2 = core::enumerate_free_paths(net, 3, 3);  // p4 -> r4
  EXPECT_EQ(c1.size(), 1u);
  EXPECT_EQ(c2.size(), 1u);
  net.establish(c1.front());
  net.establish(c2.front());
  return net;
}

core::Problem fig2_problem(const topo::Network& net) {
  return core::make_problem(net, {0, 2, 4, 6, 7}, {0, 2, 4, 6, 7});
}

TEST(Fig2, OptimalMappingAllocatesAllFiveResources) {
  const topo::Network net = fig2_network();
  const core::Problem problem = fig2_problem(net);
  core::MaxFlowScheduler scheduler;
  const core::ScheduleResult result = scheduler.schedule(problem);
  EXPECT_EQ(result.allocated(), 5u);
  EXPECT_FALSE(core::verify_schedule(problem, result).has_value());
}

TEST(Fig2, PapersAlternativeOptimalMappingIsAlsoRealizable) {
  // {(p1,r3),(p3,r5),(p5,r7),(p7,r1),(p8,r8)} — one of the two optimal
  // mappings listed in Section II; it routes fully on our wiring too.
  topo::Network net = fig2_network();
  const std::pair<int, int> mapping[] = {
      {0, 2}, {2, 4}, {4, 6}, {6, 0}, {7, 7}};
  for (const auto& [p, r] : mapping) {
    const auto paths = core::enumerate_free_paths(net, p, r);
    ASSERT_EQ(paths.size(), 1u) << "p" << p + 1 << "->r" << r + 1;
    net.establish(paths.front());
  }
  SUCCEED();
}

TEST(Fig2, ArbitraryMappingLosesAllocations) {
  // The identity-style mapping {(p1,r1),(p3,r5),(p5,r3),(p7,r7),(p8,r8)}
  // the paper uses as its bad example cannot allocate all five on our
  // wiring either (it strands at least one request).
  topo::Network net = fig2_network();
  const std::pair<int, int> mapping[] = {
      {0, 0}, {2, 4}, {4, 2}, {6, 6}, {7, 7}};
  int allocated = 0;
  for (const auto& [p, r] : mapping) {
    const auto paths = core::enumerate_free_paths(net, p, r);
    if (paths.empty()) continue;
    net.establish(paths.front());
    ++allocated;
  }
  EXPECT_LT(allocated, 5);
}

TEST(Fig2, Transformation1MatchesFig2b) {
  // Fig. 2(b): the transformed flow network has unit capacities and its
  // max flow is 5.
  const topo::Network net = fig2_network();
  const core::Problem problem = fig2_problem(net);
  core::TransformResult transformed = core::transformation1(problem);
  EXPECT_TRUE(transformed.net.is_unit_capacity());
  EXPECT_EQ(flow::max_flow_dinic(transformed.net).value, 5);
}

TEST(Fig2, TokenMachineAlsoAllocatesAllFive) {
  const topo::Network net = fig2_network();
  const core::Problem problem = fig2_problem(net);
  token::TokenMachine machine(problem);
  const core::ScheduleResult result = machine.run();
  EXPECT_EQ(result.allocated(), 5u);
  EXPECT_FALSE(core::verify_schedule(problem, result).has_value());
}

/// Figs. 3-4: flow augmentation = resource reallocation. Initial mapping
/// {(pa,rd),(pc,rb)} has pc blocked from rb; the augmenting path
/// s-c-d-a-b-t reallocates to {(pa,rb),(pc,rd)} and both resources are
/// allocated. (The 2x2 flow network is tested arc-exactly in
/// test_max_flow.cpp; here we check the MRSIN-level statement.)
TEST(Fig3And4, AugmentationReallocatesBlockedRequest) {
  flow::FlowNetwork net;
  const flow::NodeId s = net.add_node("s");
  const flow::NodeId a = net.add_node("a");
  const flow::NodeId b = net.add_node("b");
  const flow::NodeId c = net.add_node("c");
  const flow::NodeId d = net.add_node("d");
  const flow::NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  const flow::ArcId sa = net.add_arc(s, a, 1);
  net.add_arc(s, c, 1);
  const flow::ArcId ab = net.add_arc(a, b, 1);
  const flow::ArcId ad = net.add_arc(a, d, 1);
  const flow::ArcId cd = net.add_arc(c, d, 1);
  const flow::ArcId bt = net.add_arc(b, t, 1);
  const flow::ArcId dt = net.add_arc(d, t, 1);

  // Initial flow: pa allocated rd (path s-a-d-t); pc blocked.
  net.set_flow(sa, 1);
  net.set_flow(ad, 1);
  net.set_flow(dt, 1);

  const flow::MaxFlowResult result = flow::max_flow_dinic(net);
  EXPECT_EQ(result.value, 1) << "exactly one unit augmented";
  EXPECT_EQ(net.flow_value(), 2) << "both resources allocated";
  EXPECT_EQ(net.arc(ad).flow, 0) << "the a->d unit was cancelled";
  EXPECT_EQ(net.arc(ab).flow, 1) << "pa reallocated to rb";
  EXPECT_EQ(net.arc(cd).flow, 1) << "pc now owns rd";
  EXPECT_EQ(net.arc(bt).flow, 1);
}

/// Fig. 5: Transformation 2 with priorities/preferences. We reconstruct the
/// scenario (the figure's exact levels are in the artwork): p3,p5,p8
/// request; r1,r4,r5,r7,r8 available; the three highest-preference
/// resources are r8 (10), r1 (9), r7 (8). The minimum-cost flow must
/// allocate all three requests onto exactly {r1, r7, r8} — the same
/// resource set as the paper's mapping {(p3,r8),(p5,r1),(p8,r7)}.
TEST(Fig5, MinCostFlowChoosesHighestPreferenceResources) {
  const topo::Network net = topo::make_omega(8);
  core::Problem problem;
  problem.network = &net;
  problem.requests = {{2, 6, 0}, {4, 4, 0}, {7, 9, 0}};
  problem.free_resources = {
      {0, 9, 0}, {3, 2, 0}, {4, 3, 0}, {6, 8, 0}, {7, 10, 0}};

  for (const auto algorithm :
       {flow::MinCostFlowAlgorithm::kSsp,
        flow::MinCostFlowAlgorithm::kCycleCancel,
        flow::MinCostFlowAlgorithm::kOutOfKilter}) {
    core::MinCostScheduler scheduler(algorithm);
    const core::ScheduleResult result = scheduler.schedule(problem);
    EXPECT_FALSE(core::verify_schedule(problem, result).has_value());
    ASSERT_EQ(result.allocated(), 3u);
    std::set<topo::ResourceId> chosen;
    for (const auto& assignment : result.assignments) {
      chosen.insert(assignment.resource.resource);
    }
    EXPECT_EQ(chosen, (std::set<topo::ResourceId>{0, 6, 7}))
        << "resources r1, r7, r8";
    // Cost: (q_max - q) summed = (10-10)+(10-9)+(10-8) = 3 plus priority
    // terms (9-6)+(9-4)+(9-9) = 8 -> total 11.
    EXPECT_EQ(result.cost, 11);
  }
}

TEST(Fig5, Transformation2BypassCarriesOverflow) {
  // Same instance but only one resource available: two requests must route
  // through the bypass node, one gets the resource.
  const topo::Network net = topo::make_omega(8);
  core::Problem problem;
  problem.network = &net;
  problem.requests = {{2, 6, 0}, {4, 4, 0}, {7, 9, 0}};
  problem.free_resources = {{0, 9, 0}};
  core::MinCostScheduler scheduler;
  const core::ScheduleResult result = scheduler.schedule(problem);
  EXPECT_EQ(result.allocated(), 1u);
}

/// Fig. 8: layered-network construction on a 4x4 MRSIN. We realize the
/// blocking configuration found on the 4x4 indirect binary cube: with
/// p1->r1 and p4->r4 established as the initial flow, p2 cannot reach r3
/// by any free path; the layered network exposes an augmenting path with a
/// cancellation (backward) link and all three requests get resources.
TEST(Fig8, LayeredNetworkFindsReallocatingAugmentingPath) {
  const topo::Network net = topo::make_indirect_cube(4);
  const core::Problem problem = core::make_problem(net, {0, 1, 3}, {0, 2, 3});
  core::TransformResult transformed = core::transformation1(problem);

  // Install the initial flow: p1 -> r1 and p4 -> r4 along their unique
  // fabric paths.
  const auto set_circuit_flow = [&](topo::ProcessorId p, topo::ResourceId r) {
    const auto paths = core::enumerate_free_paths(net, p, r);
    ASSERT_EQ(paths.size(), 1u);
    for (std::size_t a = 0; a < transformed.net.arc_count(); ++a) {
      const auto arc = static_cast<flow::ArcId>(a);
      if (transformed.arc_processor[a] == p) transformed.net.set_flow(arc, 1);
      if (transformed.arc_resource[a] == r) transformed.net.set_flow(arc, 1);
      if (transformed.arc_link[a] != topo::kInvalidId &&
          std::find(paths.front().links.begin(), paths.front().links.end(),
                    transformed.arc_link[a]) != paths.front().links.end()) {
        transformed.net.set_flow(arc, 1);
      }
    }
  };
  set_circuit_flow(0, 0);
  set_circuit_flow(3, 3);
  ASSERT_EQ(transformed.net.flow_value(), 2);

  // p2 (processor 1) is blocked from r3 (resource 2) by free paths.
  {
    topo::Network occupied = net;
    const auto p1_path = core::enumerate_free_paths(occupied, 0, 0);
    occupied.establish(p1_path.front());
    const auto p4_path = core::enumerate_free_paths(occupied, 3, 3);
    occupied.establish(p4_path.front());
    EXPECT_TRUE(core::enumerate_free_paths(occupied, 1, 2).empty());
  }

  flow::DinicTrace trace;
  const flow::MaxFlowResult result =
      flow::max_flow_dinic(transformed.net, &trace);
  EXPECT_EQ(result.value, 1) << "one augmenting unit for p2";
  EXPECT_EQ(transformed.net.flow_value(), 3) << "all three allocated";

  // The first layered network must contain a backward (cancellation)
  // useful link — the flow rearrangement of Fig. 8(b).
  ASSERT_FALSE(trace.phases.empty());
  const bool has_backward = std::any_of(
      trace.phases.front().useful_links.begin(),
      trace.phases.front().useful_links.end(),
      [](flow::ResidualGraph::EdgeId e) {
        return !flow::ResidualGraph::is_forward(e);
      });
  EXPECT_TRUE(has_backward);

  // And the extracted schedule is realizable with all three requests.
  const core::ScheduleResult schedule =
      core::extract_schedule(problem, transformed);
  EXPECT_EQ(schedule.allocated(), 3u);
  EXPECT_FALSE(core::verify_schedule(problem, schedule).has_value());
}

TEST(Fig8, TokenMachinePerformsTheSameReallocation) {
  // The distributed machine must reach 3 allocations on the same instance
  // (its first iteration will bond two pairs, the second reallocates).
  const topo::Network net = topo::make_indirect_cube(4);
  const core::Problem problem = core::make_problem(net, {0, 1, 3}, {0, 2, 3});
  token::TokenMachine machine(problem);
  token::TokenStats stats;
  const core::ScheduleResult result = machine.run(&stats);
  EXPECT_EQ(result.allocated(), 3u);
  EXPECT_FALSE(core::verify_schedule(problem, result).has_value());
}

}  // namespace
}  // namespace rsin
