#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace rsin::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng base(9);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (s1() == s2()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u) << "all values in range should appear";
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, UniformDoublesInUnitInterval) {
  Rng rng(6);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(8);
  double sum = 0.0;
  const double rate = 2.5;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / 20000.0, 1.0 / rate, 0.02);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(10);
  std::vector<int> values(32);
  for (int i = 0; i < 32; ++i) values[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);
}

}  // namespace
}  // namespace rsin::util
