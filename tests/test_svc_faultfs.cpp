// Hostile-environment storage: the FaultFs schedule grammar, the IO
// circuit breaker (read-only degraded mode, rollback to the durable
// prefix, re-arm probes), EINTR storms and short writes at the journal
// call sites, snapshot rollback under fault, and orphan tmp cleanup
// (DESIGN.md §12).
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "svc/faultfs.hpp"
#include "svc/service.hpp"

namespace rsin::svc {
namespace {

using Op = FaultFs::Rule::Op;

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name)
      : path(std::string(::testing::TempDir()) + name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

/// Service wired to `fs`, with a fast breaker (1 retry, 1 ms probe).
ServiceConfig faulty_config(const TempDir& dir, FaultFs* fs) {
  ServiceConfig config;
  config.dir = dir.path;
  config.pool_shards = 2;
  config.vfs = fs;
  config.io.flush_retries = 1;
  config.io.probe_backoff_ms = 1;
  return config;
}

FaultFs::Rule write_error_rule(const std::string& path, int error,
                               std::uint64_t count) {
  FaultFs::Rule rule;
  rule.op = Op::kWrite;
  rule.path_contains = path;
  rule.error = error;
  rule.count = count;
  return rule;
}

void seed_tenant(Service& service) {
  ASSERT_TRUE(
      service.execute("tenant name=t0 topology=omega n=8 seed=7 "
                      "scheduler=breaker")
          .ok);
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(service
                    .execute("req tenant=t0 id=" + std::to_string(i) +
                             " proc=" + std::to_string(i % 5) + " prio=0")
                    .ok);
  }
  ASSERT_TRUE(service.execute("cycle tenant=t0 id=100").ok);
}

/// Blocks until the probe backoff elapsed and the re-arm attempt ran.
bool rearm_with_patience(Service& service) {
  for (int i = 0; i < 200; ++i) {
    if (service.maybe_rearm()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(FaultFs, ParseSpecBuildsTheSchedule) {
  const std::vector<FaultFs::Rule> rules = FaultFs::parse_spec(
      "op=write,path=journal,after=120,count=2,err=ENOSPC;"
      "op=fdatasync,err=EIO;"
      "op=write,short=3,cut=1;"
      "op=write,count=inf,err=5");
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0].op, Op::kWrite);
  EXPECT_EQ(rules[0].path_contains, "journal");
  EXPECT_EQ(rules[0].after, 120u);
  EXPECT_EQ(rules[0].count, 2u);
  EXPECT_EQ(rules[0].error, ENOSPC);
  EXPECT_EQ(rules[1].op, Op::kFdatasync);
  EXPECT_EQ(rules[1].error, EIO);
  EXPECT_EQ(rules[1].count, 1u);
  EXPECT_EQ(rules[2].short_bytes, 3u);
  EXPECT_TRUE(rules[2].power_cut);
  EXPECT_EQ(rules[3].count, FaultFs::Rule::kPersistent);
  EXPECT_EQ(rules[3].error, 5);

  EXPECT_THROW((void)FaultFs::parse_spec("op=write"), std::invalid_argument);
  EXPECT_THROW((void)FaultFs::parse_spec("op=warp,err=EIO"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultFs::parse_spec("nonsense"), std::invalid_argument);
  EXPECT_THROW((void)FaultFs::parse_spec("op=write,err=EWHAT"),
               std::invalid_argument);
}

TEST(FaultFs, WriteFailureTripsTheBreakerWithNoAcknowledgedLoss) {
  TempDir dir("faultfs_trip");
  FaultFs fs;
  Service service(faulty_config(dir, &fs));
  service.start_fresh();
  seed_tenant(service);
  ASSERT_TRUE(service.commit());
  const std::string durable_stats =
      service.execute("stats tenant=t0").body;

  // Disk full, persistently. The next batch executes in memory, fails to
  // commit, and must be rolled back wholesale.
  fs.schedule(
      write_error_rule("journal", ENOSPC, FaultFs::Rule::kPersistent));
  ASSERT_TRUE(service.execute("req tenant=t0 id=50 proc=1 prio=0").ok);
  EXPECT_FALSE(service.commit());
  EXPECT_TRUE(service.read_only());
  EXPECT_EQ(service.io_mode(), IoMode::kReadOnly);

  // Memory equals the durable prefix again — the unacknowledged id=50 is
  // gone, nothing acknowledged was lost.
  EXPECT_EQ(service.execute("stats tenant=t0").body, durable_stats);

  // Mutations get the coded refusal; reads keep serving.
  const Response refused =
      service.execute("req tenant=t0 id=51 proc=1 prio=0");
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.body.rfind("code=read-only", 0), 0u) << refused.body;
  EXPECT_TRUE(service.execute("ping").ok);
  EXPECT_TRUE(service.execute("stats tenant=t0").ok);
  const Response io_status = service.execute("io-status");
  ASSERT_TRUE(io_status.ok);
  EXPECT_NE(io_status.body.find("mode=read-only"), std::string::npos)
      << io_status.body;
  EXPECT_NE(io_status.body.find("trips=1"), std::string::npos)
      << io_status.body;

  // Probes keep failing while the disk is down: still read-only.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // (A probe only touches open/ftruncate/lseek — it can succeed even with
  // writes down; what must NOT happen is the breaker closing. Half-open
  // commits that fail re-open it.)
  if (service.maybe_rearm()) {
    ASSERT_TRUE(service.execute("req tenant=t0 id=52 proc=1 prio=0").ok);
    EXPECT_FALSE(service.commit());
    EXPECT_TRUE(service.read_only());
  }

  // Disk comes back: probe re-arms, mutations resume, and the rolled-back
  // id is admitted fresh (not `duplicate` — proof the rollback ran).
  fs.heal();
  ASSERT_TRUE(rearm_with_patience(service));
  EXPECT_EQ(service.io_mode(), IoMode::kHalfOpen);
  const Response retried =
      service.execute("req tenant=t0 id=50 proc=1 prio=0");
  ASSERT_TRUE(retried.ok);
  EXPECT_EQ(retried.body, "status=admitted");
  EXPECT_TRUE(service.commit());
  EXPECT_EQ(service.io_mode(), IoMode::kNormal);
  const std::string live_stats = service.execute("stats tenant=t0").body;

  // A restart from disk agrees bitwise with the survivor.
  Service recovered(faulty_config(dir, nullptr));
  (void)recovered.recover();
  EXPECT_EQ(recovered.execute("stats tenant=t0").body, live_stats);
}

TEST(FaultFs, EintrStormIsAbsorbedByTheCallSites) {
  TempDir dir("faultfs_eintr");
  FaultFs fs;
  Service service(faulty_config(dir, &fs));
  service.start_fresh();
  seed_tenant(service);
  // Every journal write EINTRs 7 times before getting through; the
  // journal's write loop must ride it out without a single failed commit.
  fs.schedule(write_error_rule("journal", EINTR, 7));
  ASSERT_TRUE(service.execute("req tenant=t0 id=60 proc=2 prio=0").ok);
  EXPECT_TRUE(service.commit());
  EXPECT_FALSE(service.read_only());
  EXPECT_GE(fs.stats().injected, 7u);

  // Interrupted opens during recovery are retried the same way.
  FaultFs reopen_fs;
  FaultFs::Rule open_rule;
  open_rule.op = Op::kOpen;
  open_rule.error = EINTR;
  open_rule.count = 3;
  reopen_fs.schedule(open_rule);
  Service recovered(faulty_config(dir, &reopen_fs));
  const RecoveryReport report = recovered.recover();
  EXPECT_GT(report.replayed, 0u);
  EXPECT_TRUE(recovered.execute("stats tenant=t0").ok);
}

TEST(FaultFs, ShortWritesNeverCorruptTheJournal) {
  TempDir dir("faultfs_short");
  FaultFs fs;
  Service service(faulty_config(dir, &fs));
  service.start_fresh();
  // The kernel delivers one byte at a time for the first 200 writes: legal
  // POSIX behavior the write loop must absorb with intact framing.
  FaultFs::Rule rule;
  rule.op = Op::kWrite;
  rule.path_contains = "journal";
  rule.short_bytes = 1;
  rule.count = 200;
  fs.schedule(rule);
  seed_tenant(service);
  EXPECT_TRUE(service.commit());
  EXPECT_GT(fs.stats().short_writes, 0u);
  const std::string live_stats = service.execute("stats tenant=t0").body;

  Service recovered(faulty_config(dir, nullptr));
  const RecoveryReport report = recovered.recover();
  EXPECT_FALSE(report.journal_truncated);
  EXPECT_EQ(recovered.execute("stats tenant=t0").body, live_stats);
}

TEST(FaultFs, PowerCutLeavesATornTailRecoveryDrops) {
  TempDir dir("faultfs_cut");
  std::string durable_stats;
  {
    FaultFs fs;
    Service service(faulty_config(dir, &fs));
    service.start_fresh();
    seed_tenant(service);
    ASSERT_TRUE(service.commit());
    durable_stats = service.execute("stats tenant=t0").body;

    // Mid-write power cut: 3 bytes of the next journal flush land, then
    // the disk is gone (every later write fails) until "reboot".
    FaultFs::Rule rule;
    rule.op = Op::kWrite;
    rule.path_contains = "journal";
    rule.short_bytes = 3;
    rule.power_cut = true;
    fs.schedule(rule);
    ASSERT_TRUE(service.execute("req tenant=t0 id=70 proc=3 prio=0").ok);
    EXPECT_FALSE(service.commit());
    EXPECT_TRUE(service.read_only());
    EXPECT_EQ(fs.stats().power_cuts, 1u);
    // The dead disk keeps probes failing.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_FALSE(service.maybe_rearm());
    // The survivor still serves the durable state.
    EXPECT_EQ(service.execute("stats tenant=t0").body, durable_stats);
  }

  // Machine restart on a healthy disk: the 3-byte torn tail is dropped,
  // state is exactly the durable prefix, and the lost command can rerun.
  Service recovered(faulty_config(dir, nullptr));
  const RecoveryReport report = recovered.recover();
  EXPECT_TRUE(report.journal_truncated);
  EXPECT_EQ(recovered.execute("stats tenant=t0").body, durable_stats);
  const Response rerun =
      recovered.execute("req tenant=t0 id=70 proc=3 prio=0");
  ASSERT_TRUE(rerun.ok);
  EXPECT_EQ(rerun.body, "status=admitted");
}

TEST(FaultFs, SnapshotFaultRollsBackCleanly) {
  TempDir dir("faultfs_snap");
  FaultFs fs;
  Service service(faulty_config(dir, &fs));
  service.start_fresh();
  seed_tenant(service);
  ASSERT_TRUE(service.commit());

  // Disk full for the snapshot tmp file: the snapshot command is refused
  // with a coded error, the tmp file is gone, and NORMAL service continues
  // (journal and memory untouched — no read-only trip).
  FaultFs::Rule rule;
  rule.op = Op::kWrite;
  rule.path_contains = ".tmp";
  rule.error = ENOSPC;
  rule.count = FaultFs::Rule::kPersistent;
  fs.schedule(rule);
  const Response refused = service.execute("snapshot");
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.body.rfind("code=io", 0), 0u) << refused.body;
  EXPECT_FALSE(service.read_only());
  EXPECT_EQ(service.epoch(), 0u);
  EXPECT_FALSE(
      std::filesystem::exists(dir.path + "/snapshot.tmp"));
  ASSERT_TRUE(service.execute("req tenant=t0 id=80 proc=0 prio=0").ok);
  EXPECT_TRUE(service.commit());

  // Same story when the rename is what fails.
  fs.heal();
  FaultFs::Rule rename_rule;
  rename_rule.op = Op::kRename;
  rename_rule.path_contains = "snapshot";
  rename_rule.error = EIO;
  fs.schedule(rename_rule);
  const Response rename_refused = service.execute("snapshot");
  EXPECT_FALSE(rename_refused.ok);
  EXPECT_FALSE(service.read_only());
  EXPECT_EQ(service.epoch(), 0u);

  // Disk healed: the snapshot goes through and recovery sees it.
  const Response ok = service.execute("snapshot");
  ASSERT_TRUE(ok.ok) << ok.body;
  EXPECT_EQ(service.epoch(), 1u);
}

TEST(FaultFs, JournalSwapFailureAfterSnapshotGoesReadOnly) {
  TempDir dir("faultfs_swap");
  FaultFs fs;
  Service service(faulty_config(dir, &fs));
  service.start_fresh();
  seed_tenant(service);
  ASSERT_TRUE(service.commit());
  const std::string pre_stats = service.execute("stats tenant=t0").body;

  // The snapshot itself lands (tmp + rename fine) but recreating the
  // journal fails once: a valid durable pair exists on disk, nothing can
  // be journaled — exactly read-only, NOT a crash.
  FaultFs::Rule rule;
  rule.op = Op::kOpen;
  rule.path_contains = "journal.bin";
  rule.error = EACCES;
  rule.count = 1;
  fs.schedule(rule);
  const Response refused = service.execute("snapshot");
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.body.rfind("code=io", 0), 0u) << refused.body;
  EXPECT_TRUE(service.read_only());
  EXPECT_EQ(service.execute("stats tenant=t0").body, pre_stats);

  // The one-shot fault is exhausted: the probe re-creates the journal at
  // the snapshot's epoch and mutations resume.
  ASSERT_TRUE(rearm_with_patience(service));
  EXPECT_EQ(service.io_mode(), IoMode::kHalfOpen);
  EXPECT_EQ(service.epoch(), 1u);
  ASSERT_TRUE(service.execute("req tenant=t0 id=90 proc=1 prio=0").ok);
  EXPECT_TRUE(service.commit());
  EXPECT_EQ(service.io_mode(), IoMode::kNormal);
  const std::string live_stats = service.execute("stats tenant=t0").body;

  Service recovered(faulty_config(dir, nullptr));
  const RecoveryReport report = recovered.recover();
  EXPECT_TRUE(report.had_snapshot);
  EXPECT_EQ(report.snapshot_epoch, 1u);
  EXPECT_EQ(recovered.execute("stats tenant=t0").body, live_stats);
}

TEST(FaultFs, OrphanTmpFilesAreRemovedOnStartup) {
  TempDir dir("faultfs_orphans");
  {
    Service service(faulty_config(dir, nullptr));
    service.start_fresh();
    seed_tenant(service);
    ASSERT_TRUE(service.commit());
  }
  // A crash mid-snapshot leaves tmp files behind; recovery sweeps every
  // *.tmp sibling and reports the count, leaving real files alone.
  std::ofstream(dir.path + "/snapshot.tmp") << "half-written snapshot";
  std::ofstream(dir.path + "/other.tmp") << "junk";
  std::ofstream(dir.path + "/keep.txt") << "not a tmp file";

  Service recovered(faulty_config(dir, nullptr));
  const RecoveryReport report = recovered.recover();
  EXPECT_EQ(report.orphans_removed, 2u);
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/snapshot.tmp"));
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/other.tmp"));
  EXPECT_TRUE(std::filesystem::exists(dir.path + "/keep.txt"));
  EXPECT_NE(report.to_args().find("orphans-removed=2"), std::string::npos);
}

TEST(FaultFs, FdatasyncFailureUnderDurableModeTripsTheBreaker) {
  TempDir dir("faultfs_sync");
  FaultFs fs;
  ServiceConfig config = faulty_config(dir, &fs);
  config.durable = true;
  Service service(config);
  service.start_fresh();
  seed_tenant(service);
  ASSERT_TRUE(service.commit());
  const std::string durable_stats =
      service.execute("stats tenant=t0").body;

  FaultFs::Rule rule;
  rule.op = Op::kFdatasync;
  rule.error = EIO;
  rule.count = FaultFs::Rule::kPersistent;
  fs.schedule(rule);
  ASSERT_TRUE(service.execute("req tenant=t0 id=95 proc=2 prio=0").ok);
  EXPECT_FALSE(service.commit());
  EXPECT_TRUE(service.read_only());
  // The flush preceding the failed fdatasync DID land id=95 in the journal,
  // so the rollback replays it: memory advances past the pre-fault stats
  // (durable-but-unacknowledged is allowed — the refused client's retry is
  // answered `duplicate`, which under idempotent ids means "already done").
  EXPECT_NE(service.execute("stats tenant=t0").body, durable_stats);
  fs.heal();
  ASSERT_TRUE(rearm_with_patience(service));
  const Response retry = service.execute("req tenant=t0 id=95 proc=2 prio=0");
  ASSERT_TRUE(retry.ok);
  EXPECT_EQ(retry.body, "status=duplicate");
  EXPECT_TRUE(service.commit());
}

}  // namespace
}  // namespace rsin::svc
