// RAII spans and the Chrome-trace-format writer: event phases, JSON output
// parseable by the bundled obs::json reader, span idempotence and moves.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_writer.hpp"

namespace rsin::obs {
namespace {

json::Value parse_trace(const TraceWriter& writer) {
  std::ostringstream out;
  writer.write_json(out);
  return json::parse(out.str());
}

TEST(ObsTrace, SpanFeedsHistogramAndEmitsCompleteEvent) {
  Histogram histogram({1e6});  // everything lands in the <= 1s bucket
  TraceWriter writer;
  {
    Span span(&histogram, &writer, "solve", "flow");
  }
  EXPECT_EQ(histogram.count(), 1);
  EXPECT_EQ(histogram.bucket_count(0), 1);
  ASSERT_EQ(writer.size(), 1u);
  const json::Value doc = parse_trace(writer);
  const json::Value& events = doc.at("traceEvents");
  ASSERT_EQ(events.array.size(), 1u);
  const json::Value& event = events.array[0];
  EXPECT_EQ(event.at("name").string, "solve");
  EXPECT_EQ(event.at("cat").string, "flow");
  EXPECT_EQ(event.at("ph").string, "X");
  EXPECT_GE(event.at("dur").number, 0.0);
  EXPECT_GE(event.at("ts").number, 0.0);
  EXPECT_DOUBLE_EQ(event.at("pid").number, 1.0);
}

TEST(ObsTrace, SpanFinishIsIdempotent) {
  Histogram histogram({1e6});
  Span span(&histogram);
  span.finish();
  span.finish();
  EXPECT_EQ(histogram.count(), 1);
}

TEST(ObsTrace, MovedFromSpanRecordsNothing) {
  Histogram histogram({1e6});
  {
    Span span(&histogram);
    Span stolen(std::move(span));
    // Only `stolen` should observe; `span`'s destructor must no-op.
  }
  EXPECT_EQ(histogram.count(), 1);
}

TEST(ObsTrace, NullSinksAreSafe) {
  Span span(nullptr, nullptr, "noop", "none");
  span.finish();  // nothing to record, nothing to crash on
}

TEST(ObsTrace, InstantAndCounterEventsCarryTheirPhases) {
  TraceWriter writer;
  writer.instant("breaker closed -> open", "core");
  writer.counter("queue_depth", "sim", 7.0);
  ASSERT_EQ(writer.size(), 2u);
  const json::Value doc = parse_trace(writer);
  const auto& events = doc.at("traceEvents").array;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("ph").string, "i");
  EXPECT_EQ(events[0].at("name").string, "breaker closed -> open");
  EXPECT_EQ(events[1].at("ph").string, "C");
  // Counter events carry their sample in args, the shape the tracing UI
  // expects for a counter track.
  EXPECT_DOUBLE_EQ(
      events[1].at("args").at("value").number, 7.0);
}

TEST(ObsTrace, TimestampsAreMonotoneOnTheWriterTimebase) {
  TraceWriter writer;
  const double before = writer.now_us();
  writer.instant("first", "t");
  writer.instant("second", "t");
  EXPECT_GE(before, 0.0);
  const json::Value doc = parse_trace(writer);
  const auto& events = doc.at("traceEvents").array;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LE(events[0].at("ts").number, events[1].at("ts").number);
}

TEST(ObsTrace, ConcurrentRecordingIsSafeAndComplete) {
  TraceWriter writer;
  constexpr int kThreads = 4;
  constexpr int kEvents = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&writer] {
      for (int i = 0; i < kEvents; ++i) writer.instant("tick", "t");
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(writer.size(), static_cast<std::size_t>(kThreads) * kEvents);
  const json::Value doc = parse_trace(writer);
  EXPECT_EQ(doc.at("traceEvents").array.size(),
            static_cast<std::size_t>(kThreads) * kEvents);
}

TEST(ObsTrace, JsonEscapesEventNames) {
  TraceWriter writer;
  writer.instant("quote \" backslash \\ newline \n", "t");
  const json::Value doc = parse_trace(writer);
  EXPECT_EQ(doc.at("traceEvents").array[0].at("name").string,
            "quote \" backslash \\ newline \n");
}

}  // namespace
}  // namespace rsin::obs
