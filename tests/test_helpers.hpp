// Shared generators for the property-style tests: random flow networks and
// random MRSIN scheduling instances with reproducible seeds.
#pragma once

#include <string>
#include <vector>

#include "core/problem.hpp"
#include "flow/network.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace rsin::test {

/// Random layered DAG flow network with `layers` interior layers of
/// `width` nodes, arc probability `density`, capacities in [1, max_cap].
inline flow::FlowNetwork random_layered_network(util::Rng& rng, int layers,
                                                int width, double density,
                                                flow::Capacity max_cap,
                                                flow::Cost max_cost = 0) {
  flow::FlowNetwork net;
  const flow::NodeId s = net.add_node("s");
  const flow::NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  std::vector<std::vector<flow::NodeId>> layer(
      static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      layer[static_cast<std::size_t>(l)].push_back(
          net.add_node("n" + std::to_string(l) + "_" + std::to_string(w)));
    }
  }
  const auto cap = [&] {
    return static_cast<flow::Capacity>(rng.uniform_int(1, max_cap));
  };
  const auto cost = [&] {
    return max_cost > 0 ? static_cast<flow::Cost>(rng.uniform_int(0, max_cost))
                        : 0;
  };
  for (const flow::NodeId v : layer[0]) {
    if (rng.bernoulli(density)) net.add_arc(s, v, cap(), cost());
  }
  for (int l = 0; l + 1 < layers; ++l) {
    for (const flow::NodeId u : layer[static_cast<std::size_t>(l)]) {
      for (const flow::NodeId v : layer[static_cast<std::size_t>(l) + 1]) {
        if (rng.bernoulli(density)) net.add_arc(u, v, cap(), cost());
      }
    }
  }
  for (const flow::NodeId u : layer[static_cast<std::size_t>(layers) - 1]) {
    if (rng.bernoulli(density)) net.add_arc(u, t, cap(), cost());
  }
  return net;
}

/// Random homogeneous scheduling instance on a copy-constructible network:
/// each processor requests with probability `p_request`, each resource is
/// free with probability `p_free`.
inline core::Problem random_problem(util::Rng& rng, const topo::Network& net,
                                    double p_request, double p_free) {
  std::vector<topo::ProcessorId> requesting;
  for (topo::ProcessorId p = 0; p < net.processor_count(); ++p) {
    if (rng.bernoulli(p_request)) requesting.push_back(p);
  }
  std::vector<topo::ResourceId> available;
  for (topo::ResourceId r = 0; r < net.resource_count(); ++r) {
    if (rng.bernoulli(p_free)) available.push_back(r);
  }
  return core::make_problem(net, requesting, available);
}

}  // namespace rsin::test
