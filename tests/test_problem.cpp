#include "core/problem.hpp"

#include <gtest/gtest.h>

#include "topo/builders.hpp"

namespace rsin::core {
namespace {

TEST(Problem, MakeProblemFillsDefaults) {
  const topo::Network net = topo::make_omega(8);
  const Problem problem = make_problem(net, {0, 2, 4}, {1, 3});
  EXPECT_EQ(problem.requests.size(), 3u);
  EXPECT_EQ(problem.free_resources.size(), 2u);
  EXPECT_EQ(problem.requests[0].priority, 0);
  EXPECT_EQ(problem.requests[0].type, 0);
  EXPECT_EQ(problem.max_priority(), 0);
  EXPECT_EQ(problem.max_preference(), 0);
}

TEST(Problem, MaxPriorityAndPreference) {
  const topo::Network net = topo::make_omega(4);
  Problem problem;
  problem.network = &net;
  problem.requests = {{0, 3, 0}, {1, 9, 0}};
  problem.free_resources = {{0, 5, 0}, {1, 2, 0}};
  EXPECT_EQ(problem.max_priority(), 9);
  EXPECT_EQ(problem.max_preference(), 5);
}

TEST(Problem, TypesAreSortedUnique) {
  const topo::Network net = topo::make_omega(4);
  Problem problem;
  problem.network = &net;
  problem.requests = {{0, 0, 2}, {1, 0, 0}};
  problem.free_resources = {{0, 0, 2}, {1, 0, 1}};
  EXPECT_EQ(problem.types(), (std::vector<std::int32_t>{0, 1, 2}));
}

TEST(Problem, ValidateRejectsDuplicateProcessor) {
  const topo::Network net = topo::make_omega(4);
  Problem problem;
  problem.network = &net;
  problem.requests = {{0, 0, 0}, {0, 0, 0}};
  EXPECT_THROW(problem.validate(), std::invalid_argument);
}

TEST(Problem, ValidateRejectsDuplicateResource) {
  const topo::Network net = topo::make_omega(4);
  Problem problem;
  problem.network = &net;
  problem.free_resources = {{2, 0, 0}, {2, 0, 0}};
  EXPECT_THROW(problem.validate(), std::invalid_argument);
}

TEST(Problem, ValidateRejectsOutOfRangeIds) {
  const topo::Network net = topo::make_omega(4);
  Problem problem;
  problem.network = &net;
  problem.requests = {{17, 0, 0}};
  EXPECT_THROW(problem.validate(), std::invalid_argument);
}

TEST(Problem, ValidateRejectsNegativePriority) {
  const topo::Network net = topo::make_omega(4);
  Problem problem;
  problem.network = &net;
  problem.requests = {{0, -1, 0}};
  EXPECT_THROW(problem.validate(), std::invalid_argument);
}

TEST(Problem, ValidateRejectsMissingNetwork) {
  Problem problem;
  EXPECT_THROW(problem.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace rsin::core
