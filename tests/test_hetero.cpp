#include "core/hetero.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "topo/builders.hpp"

namespace rsin::core {
namespace {

/// Random heterogeneous instance with `types` resource types.
Problem random_hetero_problem(util::Rng& rng, const topo::Network& net,
                              int types, double p_request, double p_free,
                              bool with_priorities = false) {
  Problem problem;
  problem.network = &net;
  for (topo::ProcessorId p = 0; p < net.processor_count(); ++p) {
    if (!rng.bernoulli(p_request)) continue;
    Request request;
    request.processor = p;
    request.type = static_cast<std::int32_t>(rng.uniform_int(0, types - 1));
    if (with_priorities) {
      request.priority = static_cast<std::int32_t>(rng.uniform_int(1, 5));
    }
    problem.requests.push_back(request);
  }
  for (topo::ResourceId r = 0; r < net.resource_count(); ++r) {
    if (!rng.bernoulli(p_free)) continue;
    FreeResource resource;
    resource.resource = r;
    resource.type = static_cast<std::int32_t>(rng.uniform_int(0, types - 1));
    if (with_priorities) {
      resource.preference = static_cast<std::int32_t>(rng.uniform_int(1, 5));
    }
    problem.free_resources.push_back(resource);
  }
  return problem;
}

TEST(HeteroLp, HomogeneousReducesToMaxFlow) {
  const topo::Network net = topo::make_omega(8);
  const Problem problem = make_problem(net, {0, 1, 2, 3}, {4, 5, 6});
  HeteroLpScheduler lp;
  MaxFlowScheduler max_flow;
  const auto detailed = lp.schedule_detailed(problem);
  EXPECT_TRUE(detailed.lp_integral);
  EXPECT_EQ(detailed.schedule.allocated(),
            max_flow.schedule(problem).allocated());
  EXPECT_FALSE(verify_schedule(problem, detailed.schedule).has_value());
}

TEST(HeteroLp, TypeMatchingIsEnforced) {
  const topo::Network net = topo::make_omega(8);
  Problem problem;
  problem.network = &net;
  problem.requests = {{0, 0, 0}, {1, 0, 1}};
  problem.free_resources = {{2, 0, 1}, {3, 0, 1}};  // no type-0 resources
  HeteroLpScheduler lp;
  const ScheduleResult result = lp.schedule(problem);
  EXPECT_FALSE(verify_schedule(problem, result).has_value());
  ASSERT_EQ(result.allocated(), 1u);
  EXPECT_EQ(result.assignments[0].request.type, 1);
}

TEST(HeteroLp, IntegralOnMinTopologies) {
  util::Rng rng(21);
  const topo::Network net = topo::make_omega(8);
  HeteroLpScheduler lp;
  int integral_count = 0;
  const int rounds = 12;
  for (int round = 0; round < rounds; ++round) {
    const Problem problem = random_hetero_problem(rng, net, 2, 0.6, 0.6);
    if (problem.requests.empty() || problem.free_resources.empty()) {
      ++integral_count;
      continue;
    }
    const auto detailed = lp.schedule_detailed(problem);
    EXPECT_FALSE(verify_schedule(problem, detailed.schedule).has_value());
    if (detailed.lp_integral) ++integral_count;
  }
  // Evans–Jarvis property for MIN-class topologies: the LP basic optimum
  // is integral (we allow the odd degenerate vertex, but expect the bulk).
  EXPECT_GE(integral_count, rounds - 2);
}

TEST(HeteroLp, NeverWorseThanSequential) {
  util::Rng rng(22);
  const topo::Network net = topo::make_omega(8);
  HeteroLpScheduler lp;
  HeteroSequentialScheduler sequential;
  for (int round = 0; round < 10; ++round) {
    const Problem problem = random_hetero_problem(rng, net, 3, 0.7, 0.7);
    if (problem.requests.empty() || problem.free_resources.empty()) continue;
    const auto lp_result = lp.schedule_detailed(problem);
    const auto seq_result = sequential.schedule(problem);
    if (lp_result.lp_integral) {
      EXPECT_GE(lp_result.schedule.allocated(), seq_result.allocated());
    }
  }
}

TEST(HeteroSequential, RealizableAndTypeCorrect) {
  util::Rng rng(23);
  const topo::Network net = topo::make_omega(8);
  HeteroSequentialScheduler scheduler;
  for (int round = 0; round < 10; ++round) {
    const Problem problem = random_hetero_problem(rng, net, 3, 0.7, 0.7);
    const ScheduleResult result = scheduler.schedule(problem);
    EXPECT_FALSE(verify_schedule(problem, result).has_value());
    for (const Assignment& assignment : result.assignments) {
      EXPECT_EQ(assignment.request.type, assignment.resource.type);
    }
  }
}

TEST(HeteroLp, WithPrioritiesUsesMinCostForm) {
  util::Rng rng(24);
  const topo::Network net = topo::make_omega(8);
  HeteroLpScheduler lp;
  for (int round = 0; round < 6; ++round) {
    const Problem problem =
        random_hetero_problem(rng, net, 2, 0.6, 0.6, /*with_priorities=*/true);
    if (problem.requests.empty() || problem.free_resources.empty()) continue;
    const auto detailed = lp.schedule_detailed(problem);
    EXPECT_FALSE(verify_schedule(problem, detailed.schedule).has_value());
  }
}

TEST(HeteroLp, EmptyTypesHandled) {
  const topo::Network net = topo::make_omega(4);
  Problem problem;
  problem.network = &net;
  problem.requests = {{0, 0, 0}};
  problem.free_resources = {{1, 0, 1}};  // mismatched type only
  HeteroLpScheduler lp;
  const ScheduleResult result = lp.schedule(problem);
  EXPECT_EQ(result.allocated(), 0u);
}

TEST(HeteroSequential, OrderCanCauseBlocking) {
  // Statistical: over many instances, sequential sometimes allocates
  // strictly less than the LP (type-interleaving blockage).
  util::Rng rng(25);
  const topo::Network net = topo::make_omega(8);
  HeteroLpScheduler lp;
  HeteroSequentialScheduler sequential;
  bool strictly_less = false;
  for (int round = 0; round < 60 && !strictly_less; ++round) {
    const Problem problem = random_hetero_problem(rng, net, 3, 0.8, 0.8);
    if (problem.requests.empty() || problem.free_resources.empty()) continue;
    const auto lp_result = lp.schedule_detailed(problem);
    if (!lp_result.lp_integral) continue;
    if (sequential.schedule(problem).allocated() <
        lp_result.schedule.allocated()) {
      strictly_less = true;
    }
  }
  EXPECT_TRUE(strictly_less);
}

}  // namespace
}  // namespace rsin::core
