#include "flow/min_cost.hpp"

#include <gtest/gtest.h>

#include "flow/max_flow.hpp"
#include "flow/validate.hpp"
#include "test_helpers.hpp"

namespace rsin::flow {
namespace {

constexpr MinCostFlowAlgorithm kAllAlgorithms[] = {
    MinCostFlowAlgorithm::kSsp, MinCostFlowAlgorithm::kCycleCancel,
    MinCostFlowAlgorithm::kOutOfKilter,
    MinCostFlowAlgorithm::kNetworkSimplex};

/// Two parallel s-t routes with different costs.
FlowNetwork two_route_network() {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  net.add_arc(s, a, 2, 1);  // cheap route, capacity 2
  net.add_arc(a, t, 2, 1);
  net.add_arc(s, b, 2, 5);  // expensive route
  net.add_arc(b, t, 2, 5);
  return net;
}

TEST(MinCostFlow, PrefersCheapRoute) {
  for (const auto algorithm : kAllAlgorithms) {
    FlowNetwork net = two_route_network();
    const MinCostFlowResult result = min_cost_flow(net, 2, algorithm);
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.value, 2);
    EXPECT_EQ(result.cost, 2 * 2) << "all flow via the cost-1 arcs";
    EXPECT_FALSE(validate_flow(net, 2).has_value());
  }
}

TEST(MinCostFlow, SpillsToExpensiveRouteWhenneeded) {
  for (const auto algorithm : kAllAlgorithms) {
    FlowNetwork net = two_route_network();
    const MinCostFlowResult result = min_cost_flow(net, 4, algorithm);
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.value, 4);
    EXPECT_EQ(result.cost, 2 * 2 + 2 * 10);
  }
}

TEST(MinCostFlow, CapsAtMaxFlowWhenTargetTooLarge) {
  for (const auto algorithm : kAllAlgorithms) {
    FlowNetwork net = two_route_network();
    const MinCostFlowResult result = min_cost_flow(net, 100, algorithm);
    EXPECT_FALSE(result.feasible);
    EXPECT_EQ(result.value, 4) << "advance the maximum possible amount";
  }
}

TEST(MinCostFlow, ZeroTargetIsFree) {
  for (const auto algorithm : kAllAlgorithms) {
    FlowNetwork net = two_route_network();
    const MinCostFlowResult result = min_cost_flow(net, 0, algorithm);
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.value, 0);
    EXPECT_EQ(result.cost, 0);
  }
}

TEST(MinCostFlow, CostForcesDetourThroughCancellation) {
  // Network where the optimum at value 2 must avoid the diagonal that a
  // greedy cheapest-path choice would take first.
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  net.add_arc(s, a, 1, 0);
  net.add_arc(s, b, 1, 4);
  net.add_arc(a, b, 1, 0);
  net.add_arc(a, t, 1, 6);
  net.add_arc(b, t, 1, 0);
  // Value 1: s-a-b-t costs 0. Value 2 must use s-b(4) + a-t(6) somehow:
  // optimum is {s-a-t (6), s-b-t (4)} = 10.
  for (const auto algorithm : kAllAlgorithms) {
    FlowNetwork copy = net;
    const MinCostFlowResult result = min_cost_flow(copy, 2, algorithm);
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.cost, 10);
  }
}

TEST(MinCostFlow, RejectsNegativeTarget) {
  FlowNetwork net = two_route_network();
  EXPECT_THROW(min_cost_flow_ssp(net, -1), std::invalid_argument);
  EXPECT_THROW(min_cost_flow_cycle_cancel(net, -1), std::invalid_argument);
  EXPECT_THROW(min_cost_flow_out_of_kilter(net, -1), std::invalid_argument);
  EXPECT_THROW(min_cost_flow_network_simplex(net, -1), std::invalid_argument);
}

TEST(MinCostFlow, UnitCapacityZeroOneResult) {
  util::Rng rng(77);
  FlowNetwork base = rsin::test::random_layered_network(
      rng, /*layers=*/3, /*width=*/4, /*density=*/0.6, /*max_cap=*/1,
      /*max_cost=*/9);
  for (const auto algorithm : kAllAlgorithms) {
    FlowNetwork net = base;
    min_cost_flow(net, 3, algorithm);
    EXPECT_TRUE(is_zero_one_flow(net));
  }
}

class MinCostRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinCostRandomSweep, AlgorithmsAgreeOnOptimalCost) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    const int layers = static_cast<int>(rng.uniform_int(1, 3));
    const int width = static_cast<int>(rng.uniform_int(2, 5));
    FlowNetwork base = rsin::test::random_layered_network(
        rng, layers, width, /*density=*/0.6, /*max_cap=*/3, /*max_cost=*/7);
    // Target a value that is usually feasible but sometimes above max-flow.
    const auto target = static_cast<Capacity>(rng.uniform_int(0, 6));

    MinCostFlowResult results[4];
    int i = 0;
    for (const auto algorithm : kAllAlgorithms) {
      FlowNetwork net = base;
      results[i] = min_cost_flow(net, target, algorithm);
      EXPECT_FALSE(validate_flow(net, results[i].value).has_value());
      ++i;
    }
    for (int j = 1; j < 4; ++j) {
      EXPECT_EQ(results[0].value, results[j].value)
          << "algorithm " << j << ", seed " << GetParam() << " round "
          << round;
      EXPECT_EQ(results[0].cost, results[j].cost)
          << "algorithm " << j << ", seed " << GetParam() << " round "
          << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinCostRandomSweep,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18, 19,
                                           20));

}  // namespace
}  // namespace rsin::flow
