#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rsin::util {
namespace {

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  csv.write_row({"1", "2"});
  csv.write_row({"3", "4"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n3,4\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, RejectsWidthMismatch) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  EXPECT_THROW(csv.write_row({"only"}), std::invalid_argument);
}

TEST(Csv, RejectsEmptyHeader) {
  std::ostringstream out;
  EXPECT_THROW(CsvWriter(out, {}), std::invalid_argument);
}

TEST(Csv, QuotedFieldRoundTripShape) {
  std::ostringstream out;
  CsvWriter csv(out, {"name", "value"});
  csv.write_row({"x,y", "1"});
  EXPECT_EQ(out.str(), "name,value\n\"x,y\",1\n");
}

}  // namespace
}  // namespace rsin::util
