// svc::Domain determinism and snapshot fidelity: identical command
// sequences produce bitwise-identical state, idempotent ids never
// re-execute (including shed requests), save/load continues bit for bit,
// and fault teardowns re-queue victims deterministically.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "core/warm_pool.hpp"
#include "svc/domain.hpp"
#include "svc/protocol.hpp"

namespace rsin::svc {
namespace {

DomainConfig small_config(const std::string& scheduler = "dinic") {
  DomainConfig config;
  config.topology = "omega";
  config.n = 8;
  config.seed = 42;
  config.scheduler = scheduler;
  return config;
}

/// Drives a fixed mixed workload: admits, cycles, a fault, a repair.
void drive(Domain& domain) {
  std::uint64_t id = 1;
  for (int round = 0; round < 4; ++round) {
    for (std::int32_t p = 0; p < 6; ++p) {
      domain.admit(id++, p, p % 3);
    }
    domain.run_cycle();
    domain.run_cycle();
  }
  domain.inject_link_fault(2);
  for (int i = 0; i < 3; ++i) domain.run_cycle();
  domain.repair_link(2);
  for (int i = 0; i < 10; ++i) domain.run_cycle();
}

TEST(SvcDomain, IdenticalCommandSequencesAreBitwiseIdentical) {
  Domain a("t", small_config(), nullptr);
  Domain b("t", small_config(), nullptr);
  drive(a);
  drive(b);
  EXPECT_EQ(a.state_hash(), b.state_hash());
  EXPECT_EQ(a.stats_args(), b.stats_args());
}

TEST(SvcDomain, PooledCanonicalWarmMatchesAcrossPoolInstances) {
  // The pool's warm residual state is NOT snapshotted; canonical mode must
  // make the schedule independent of it.
  core::WarmContextPool pool_a(2);
  core::WarmContextPool pool_b(2);
  Domain a("t", small_config("breaker"), &pool_a);
  Domain b("t", small_config("breaker"), &pool_b);
  drive(a);
  drive(a);  // a's pool is now warm; b's second run starts from colder state
  drive(b);
  drive(b);
  EXPECT_EQ(a.state_hash(), b.state_hash());
  EXPECT_EQ(a.stats_args(), b.stats_args());
}

TEST(SvcDomain, DuplicateIdsDoNotReExecute) {
  Domain domain("t", small_config(), nullptr);
  EXPECT_EQ(domain.admit(10, 0, 0), AdmitResult::kAdmitted);
  const std::uint64_t hash = domain.state_hash();
  EXPECT_EQ(domain.admit(10, 3, 2), AdmitResult::kDuplicate);
  EXPECT_EQ(domain.admit(10, 0, 0), AdmitResult::kDuplicate);
  EXPECT_EQ(domain.state_hash(), hash);
}

TEST(SvcDomain, ShedIdsAreRememberedAsSeen) {
  DomainConfig config = small_config();
  config.max_pending = 1;
  Domain domain("t", config, nullptr);
  EXPECT_EQ(domain.admit(1, 0, 0), AdmitResult::kAdmitted);
  EXPECT_EQ(domain.admit(2, 1, 0), AdmitResult::kShed);
  // A client retrying the shed request (e.g. after a daemon restart) must
  // get the same answer class, not a second execution.
  EXPECT_EQ(domain.admit(2, 1, 0), AdmitResult::kDuplicate);
  EXPECT_TRUE(domain.seen(2));
  EXPECT_EQ(domain.metrics().tasks_shed, 1);
}

TEST(SvcDomain, SnapshotRoundTripContinuesBitForBit) {
  Domain original("t", small_config("breaker"), nullptr);
  drive(original);

  std::stringstream snapshot;
  original.save(snapshot);
  Domain restored = Domain::load(snapshot, nullptr);
  EXPECT_EQ(restored.name(), "t");
  EXPECT_EQ(restored.state_hash(), original.state_hash());
  EXPECT_EQ(restored.stats_args(), original.stats_args());

  // The restored domain must CONTINUE identically, not just compare
  // equal at the snapshot point (RNG stream, in-flight events, queues).
  drive(original);
  drive(restored);
  EXPECT_EQ(restored.state_hash(), original.state_hash());
  EXPECT_EQ(restored.stats_args(), original.stats_args());
}

TEST(SvcDomain, SnapshotWithFailedLinksAndInFlightWork) {
  Domain original("t", small_config(), nullptr);
  for (std::int32_t p = 0; p < 6; ++p) original.admit(p + 1, p, 0);
  original.run_cycle();            // Circuits now in flight.
  original.inject_link_fault(1);   // And a live fault.

  std::stringstream snapshot;
  original.save(snapshot);
  Domain restored = Domain::load(snapshot, nullptr);
  EXPECT_EQ(restored.state_hash(), original.state_hash());
  for (int i = 0; i < 8; ++i) {
    original.run_cycle();
    restored.run_cycle();
  }
  EXPECT_EQ(restored.stats_args(), original.stats_args());
}

TEST(SvcDomain, FaultAndRepairAreIdempotentTransitions) {
  Domain domain("t", small_config(), nullptr);
  EXPECT_TRUE(domain.inject_link_fault(0));
  EXPECT_FALSE(domain.inject_link_fault(0));  // Already failed: no-op.
  EXPECT_TRUE(domain.repair_link(0));
  EXPECT_FALSE(domain.repair_link(0));        // Already healthy: no-op.
  EXPECT_THROW((void)domain.inject_link_fault(999999),
               std::invalid_argument);
  EXPECT_EQ(domain.metrics().faults_injected, 1);
}

TEST(SvcDomain, FaultTeardownRequeuesVictims) {
  Domain domain("t", small_config(), nullptr);
  for (std::int32_t p = 0; p < 6; ++p) domain.admit(p + 1, p, 0);
  const CycleSummary cycle = domain.run_cycle();
  ASSERT_GT(cycle.granted, 0);
  // Failing every low-numbered link tears at least one circuit down; its
  // task goes back to pending, not lost.
  const auto before = domain.metrics();
  for (topo::LinkId link = 0; link < 8; ++link) {
    domain.inject_link_fault(link);
  }
  const auto after = domain.metrics();
  EXPECT_GT(after.circuits_torn_down, before.circuits_torn_down);
  EXPECT_EQ(after.retries, after.circuits_torn_down);
  // Nothing disappears: arrived == completed + shed + still-in-system.
  for (int i = 0; i < 8; ++i) domain.repair_link(i);
  for (int i = 0; i < 50; ++i) domain.run_cycle();
  EXPECT_EQ(domain.metrics().tasks_completed, 6);
}

TEST(SvcDomain, BatchWindowDefersUntilEnoughPending) {
  Domain domain("t", small_config(), nullptr);
  domain.set_batch_window(3);
  EXPECT_TRUE(domain.run_cycle().deferred);  // Empty queue always defers.
  domain.admit(1, 0, 0);
  EXPECT_TRUE(domain.run_cycle().deferred);
  domain.admit(2, 1, 0);
  domain.admit(3, 2, 0);
  const CycleSummary cycle = domain.run_cycle();
  EXPECT_FALSE(cycle.deferred);
  EXPECT_GT(cycle.granted, 0);
}

TEST(SvcDomain, DegradationLadderSwitchesScheduler) {
  Domain domain("t", small_config("breaker"), nullptr);
  EXPECT_EQ(domain.level(), 0);
  domain.set_level(2);
  EXPECT_EQ(domain.level(), 2);
  for (std::int32_t p = 0; p < 4; ++p) domain.admit(p + 1, p, 0);
  const CycleSummary cycle = domain.run_cycle();
  EXPECT_FALSE(cycle.deferred);
  EXPECT_GT(cycle.granted, 0);  // Greedy rung still schedules.
  EXPECT_GT(domain.metrics().degraded_cycle_fraction, 0.0);
}

TEST(SvcDomain, DegradedTenantNeverPerturbsItsNeighbor) {
  // Multi-domain isolation: two tenants share one warm pool; "bad" takes a
  // barrage of fabric faults and is forced down the degradation ladder
  // mid-run, while "good" must produce the exact same schedule as a
  // control run in which "bad" never existed. Canonical warm mode is what
  // makes this hold even though the pool's residual state is shared.
  core::WarmContextPool pool(2);
  Domain good("good", small_config("breaker"), &pool);
  Domain bad("bad", small_config("breaker"), &pool);
  core::WarmContextPool control_pool(2);
  Domain control("good", small_config("breaker"), &control_pool);

  std::uint64_t id = 1;
  for (int round = 0; round < 6; ++round) {
    for (std::int32_t p = 0; p < 6; ++p) {
      good.admit(id, p, p % 3);
      control.admit(id, p, p % 3);
      bad.admit(id, (p + 1) % 8, p % 2);
      ++id;
    }
    if (round == 2) {
      for (topo::LinkId link = 0; link < 6; ++link) {
        bad.inject_link_fault(link);
      }
      bad.set_level(2);  // bottom rung: greedy only
    }
    good.run_cycle();
    control.run_cycle();
    bad.run_cycle();
    good.run_cycle();
    control.run_cycle();
    bad.run_cycle();
  }
  EXPECT_GT(bad.metrics().degraded_cycle_fraction, 0.0)
      << "the noisy tenant must actually have degraded";
  EXPECT_EQ(good.state_hash(), control.state_hash())
      << "a degraded sibling leaked into another tenant's schedule";
  EXPECT_EQ(good.stats_args(), control.stats_args());
}

TEST(SvcDomain, ConfigValidationNamesTheOffendingField) {
  DomainConfig config = small_config();
  config.scheduler = "bogus";
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = small_config();
  config.cycle_interval = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = small_config();
  config.max_pending = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  const Command command = parse_command(
      "tenant name=t topology=cube n=16 seed=9 scheduler=warm "
      "max-pending=32");
  const DomainConfig parsed = DomainConfig::from_command(command);
  EXPECT_EQ(parsed.topology, "cube");
  EXPECT_EQ(parsed.n, 16);
  EXPECT_EQ(parsed.scheduler, "warm");
  EXPECT_EQ(parsed.max_pending, 32);
}

TEST(SvcDomain, StatsArgsCarriesTheStateHash) {
  Domain domain("t", small_config(), nullptr);
  drive(domain);
  const std::string stats = domain.stats_args();
  const std::string expected = "hash=" + format_hex(domain.state_hash());
  EXPECT_NE(stats.find(expected), std::string::npos)
      << stats << " should end with " << expected;
}

}  // namespace
}  // namespace rsin::svc
