#include "topo/builders.hpp"

#include <gtest/gtest.h>

#include "core/routing.hpp"

namespace rsin::topo {
namespace {

struct TopologyCase {
  std::string name;
  std::int32_t n;
  std::int32_t expected_stages;
  std::int32_t paths_per_pair;  ///< Unique-path (delta) networks have 1.
};

class BuilderStructure : public ::testing::TestWithParam<TopologyCase> {};

TEST_P(BuilderStructure, CountsAndWiring) {
  const TopologyCase& param = GetParam();
  const Network net = make_named(param.name, param.n);
  EXPECT_EQ(net.processor_count(), param.n);
  EXPECT_EQ(net.resource_count(), param.n);
  EXPECT_EQ(net.stage_count(), param.expected_stages);
  EXPECT_TRUE(fully_wired(net));
}

TEST_P(BuilderStructure, FullAccessibility) {
  // Every processor can reach every resource over a free network — the
  // full-access property of the banyan-class networks.
  const TopologyCase& param = GetParam();
  const Network net = make_named(param.name, param.n);
  for (ProcessorId p = 0; p < net.processor_count(); ++p) {
    const auto reachable = core::reachable_free_resources(net, p);
    EXPECT_EQ(reachable.size(),
              static_cast<std::size_t>(net.resource_count()))
        << param.name << " processor " << p;
  }
}

TEST_P(BuilderStructure, PathMultiplicity) {
  const TopologyCase& param = GetParam();
  if (param.paths_per_pair <= 0) return;  // multiplicity varies
  const Network net = make_named(param.name, param.n);
  for (ProcessorId p = 0; p < net.processor_count(); ++p) {
    for (ResourceId r = 0; r < net.resource_count(); ++r) {
      const auto paths = core::enumerate_free_paths(net, p, r);
      EXPECT_EQ(paths.size(), static_cast<std::size_t>(param.paths_per_pair))
          << param.name << " " << p << "->" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Named, BuilderStructure,
    ::testing::Values(TopologyCase{"omega", 8, 3, 1},
                      TopologyCase{"omega", 16, 4, 1},
                      TopologyCase{"baseline", 8, 3, 1},
                      TopologyCase{"cube", 8, 3, 1},
                      TopologyCase{"butterfly", 8, 3, 1},
                      TopologyCase{"benes", 8, 5, 4},
                      TopologyCase{"crossbar", 8, 1, 1},
                      TopologyCase{"omega", 4, 2, 1},
                      TopologyCase{"benes", 4, 3, 2},
                      TopologyCase{"gamma", 8, 4, 0},
                      TopologyCase{"gamma", 16, 5, 0}),
    [](const ::testing::TestParamInfo<TopologyCase>& info) {
      return info.param.name + std::to_string(info.param.n);
    });

TEST(Builders, OmegaSwitchAndLinkCounts) {
  const Network net = make_omega(8);
  EXPECT_EQ(net.switch_count(), 3 * 4);
  // 8 injection + 2*8 inter-stage + 8 delivery.
  EXPECT_EQ(net.link_count(), 8 + 16 + 8);
}

TEST(Builders, ExtraStageOmegaAddsPaths) {
  const Network base = make_omega(8);
  const Network extra = make_omega(8, /*extra_stages=*/1);
  EXPECT_EQ(extra.stage_count(), 4);
  EXPECT_TRUE(fully_wired(extra));
  const auto base_paths = core::enumerate_free_paths(base, 0, 5);
  const auto extra_paths = core::enumerate_free_paths(extra, 0, 5);
  EXPECT_EQ(base_paths.size(), 1u);
  EXPECT_EQ(extra_paths.size(), 2u) << "one extra stage doubles the paths";
}

TEST(Builders, BenesIsRearrangeable) {
  // In an 8x8 Benes there are 4 link-disjoint path sets for the identity
  // permutation; simply check each pair has multiple alternatives and the
  // fabric has 2*log2(8)-1 stages.
  const Network net = make_benes(8);
  EXPECT_EQ(net.stage_count(), 5);
  EXPECT_EQ(net.switch_count(), 5 * 4);
}

TEST(Builders, ClosStructure) {
  const Network net = make_clos(2, 3, 4);  // 8 terminals, m=3 middle
  EXPECT_EQ(net.processor_count(), 8);
  EXPECT_EQ(net.resource_count(), 8);
  EXPECT_EQ(net.switch_count(), 4 + 3 + 4);
  EXPECT_EQ(net.stage_count(), 3);
  EXPECT_TRUE(fully_wired(net));
  // m >= 2n-1 = 3: strictly nonblocking; every pair reachable, and there
  // are m paths per pair.
  const auto paths = core::enumerate_free_paths(net, 0, 7);
  EXPECT_EQ(paths.size(), 3u);
}

TEST(Builders, CrossbarIsNonblocking) {
  Network net = make_crossbar(4, 4);
  // Establish the identity permutation: all four circuits coexist.
  for (std::int32_t i = 0; i < 4; ++i) {
    const auto paths = core::enumerate_free_paths(net, i, i);
    ASSERT_EQ(paths.size(), 1u);
    net.establish(paths.front());
  }
  EXPECT_EQ(net.occupied_link_count(), 8);
}

TEST(Builders, GammaHasRedundantPaths) {
  // The defining property of the gamma network: multiple paths between
  // most source-destination pairs (the straight route plus +/- 2^i
  // decompositions of the distance).
  const Network net = make_gamma(8);
  EXPECT_EQ(net.switch_count(), 4 * 8);
  // Distance 0 has the unique all-straight route... plus wrap-around
  // representations; distance 1 = 1 = 2-1 = -4+2+1... enumerate and check
  // redundancy exists for a nonzero distance.
  const auto direct = core::enumerate_free_paths(net, 0, 0);
  EXPECT_GE(direct.size(), 1u);
  const auto offset = core::enumerate_free_paths(net, 0, 3);
  EXPECT_GT(offset.size(), 1u) << "distance 3 = +4-1 = +2+1 = ...";
}

TEST(Builders, GammaSurvivesLinkFailure) {
  // Fault tolerance through redundancy: occupy one link of a chosen route
  // and the pair stays connected — unlike the unique-path Omega.
  Network net = make_gamma(8);
  const auto paths = core::enumerate_free_paths(net, 2, 5);
  ASSERT_GT(paths.size(), 1u);
  net.occupy_link(paths.front().links[1]);
  EXPECT_FALSE(core::enumerate_free_paths(net, 2, 5).empty());
}

TEST(Builders, GammaRejectsSmallSizes) {
  EXPECT_THROW(make_gamma(2), std::invalid_argument);
  EXPECT_THROW(make_gamma(6), std::invalid_argument);
  EXPECT_THROW(make_data_manipulator(2), std::invalid_argument);
}

TEST(Builders, DataManipulatorStructure) {
  const Network net = make_data_manipulator(8);
  EXPECT_EQ(net.stage_count(), 4);
  EXPECT_EQ(net.switch_count(), 4 * 8);
  EXPECT_TRUE(fully_wired(net));
  // Full access with redundancy for at least some pairs.
  for (ProcessorId p = 0; p < 8; ++p) {
    EXPECT_EQ(core::reachable_free_resources(net, p).size(), 8u);
  }
  EXPECT_GT(core::enumerate_free_paths(net, 0, 3).size(), 1u);
}

TEST(Builders, GammaAndDataManipulatorDifferInWiring) {
  // Same switch/link counts, different stride order => different path sets.
  const Network gamma = make_gamma(8);
  const Network dm = make_data_manipulator(8);
  EXPECT_EQ(gamma.link_count(), dm.link_count());
  const auto gamma_paths = core::enumerate_free_paths(gamma, 0, 1);
  const auto dm_paths = core::enumerate_free_paths(dm, 0, 1);
  // Path multiplicities to an adjacent output generally differ between the
  // LSB-first and MSB-first stride orders.
  EXPECT_TRUE(gamma_paths.size() != dm_paths.size() ||
              gamma_paths.front().links != dm_paths.front().links);
}

TEST(Builders, RadixDeltaGeneralizesButterfly) {
  // r = 2 must coincide with the binary butterfly link-for-link.
  const Network delta = make_radix_delta(2, 3);
  const Network butterfly = make_butterfly(8);
  ASSERT_EQ(delta.link_count(), butterfly.link_count());
  for (LinkId l = 0; l < delta.link_count(); ++l) {
    EXPECT_EQ(delta.link(l).from, butterfly.link(l).from);
    EXPECT_EQ(delta.link(l).to, butterfly.link(l).to);
  }
}

TEST(Builders, RadixThreeDelta) {
  const Network net = make_radix_delta(3, 2);  // 9 terminals, 3x3 boxes
  EXPECT_EQ(net.processor_count(), 9);
  EXPECT_EQ(net.resource_count(), 9);
  EXPECT_EQ(net.switch_count(), 2 * 3);
  EXPECT_TRUE(fully_wired(net));
  // Delta property: full access with exactly one path per pair.
  for (ProcessorId p = 0; p < 9; ++p) {
    for (ResourceId r = 0; r < 9; ++r) {
      EXPECT_EQ(core::enumerate_free_paths(net, p, r).size(), 1u)
          << p << "->" << r;
    }
  }
}

TEST(Builders, RadixFourDeltaFullAccess) {
  const Network net = make_radix_delta(4, 2);  // 16 terminals, 4x4 boxes
  EXPECT_EQ(net.processor_count(), 16);
  EXPECT_TRUE(fully_wired(net));
  for (ProcessorId p = 0; p < 16; ++p) {
    EXPECT_EQ(core::reachable_free_resources(net, p).size(), 16u);
  }
}

TEST(Builders, RadixDeltaRejectsBadParameters) {
  EXPECT_THROW(make_radix_delta(1, 3), std::invalid_argument);
  EXPECT_THROW(make_radix_delta(2, 0), std::invalid_argument);
  EXPECT_THROW(make_radix_delta(2, 40), std::invalid_argument);  // too big
}

TEST(Builders, RejectsBadParameters) {
  EXPECT_THROW(make_omega(6), std::invalid_argument);
  EXPECT_THROW(make_omega(0), std::invalid_argument);
  EXPECT_THROW(make_omega(8, -1), std::invalid_argument);
  EXPECT_THROW(make_baseline(3), std::invalid_argument);
  EXPECT_THROW(make_benes(5), std::invalid_argument);
  EXPECT_THROW(make_clos(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(make_named("augmented-data-manipulator", 8),
               std::invalid_argument);
}

TEST(Builders, OmegaBlockingPairExists) {
  // The defining property the paper builds on: a unique-path MIN blocks.
  // In an 8x8 Omega, find two (p, r) pairs whose unique paths share a link.
  Network net = make_omega(8);
  const auto path_a = core::enumerate_free_paths(net, 0, 0);
  ASSERT_EQ(path_a.size(), 1u);
  net.establish(path_a.front());
  // Some other pair must now be blocked.
  bool blocked = false;
  for (ProcessorId p = 1; p < 8 && !blocked; ++p) {
    for (ResourceId r = 1; r < 8 && !blocked; ++r) {
      if (core::enumerate_free_paths(net, p, r).empty()) blocked = true;
    }
  }
  EXPECT_TRUE(blocked);
}

}  // namespace
}  // namespace rsin::topo
