// Cross-module property sweeps: the paper's theorems checked end-to-end on
// randomized instances over several topologies, with partially occupied
// fabrics and priority workloads.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/hetero.hpp"
#include "core/routing.hpp"
#include "core/scheduler.hpp"
#include "core/transform.hpp"
#include "fault/fault_injector.hpp"
#include "flow/max_flow.hpp"
#include "flow/min_cut.hpp"
#include "flow/validate.hpp"
#include "test_helpers.hpp"
#include "token/element_machine.hpp"
#include "token/token_machine.hpp"
#include "topo/builders.hpp"

namespace rsin {
namespace {

struct SweepCase {
  std::string topology;
  std::int32_t n;
  std::uint64_t seed;
};

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& info) {
  return info.param.topology + std::to_string(info.param.n) + "_s" +
         std::to_string(info.param.seed);
}

class PropertySweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  /// Instance with random requests/resources and a few background circuits.
  core::Problem make_instance(topo::Network& net, util::Rng& rng) {
    net.release_all();
    core::Problem problem = test::random_problem(rng, net, 0.6, 0.6);
    // Occupy up to two background circuits among the uninvolved terminals.
    std::vector<topo::ProcessorId> idle;
    for (topo::ProcessorId p = 0; p < net.processor_count(); ++p) {
      const bool requesting =
          std::any_of(problem.requests.begin(), problem.requests.end(),
                      [&](const core::Request& r) { return r.processor == p; });
      if (!requesting) idle.push_back(p);
    }
    std::vector<topo::ResourceId> busy;
    for (topo::ResourceId r = 0; r < net.resource_count(); ++r) {
      const bool free = std::any_of(
          problem.free_resources.begin(), problem.free_resources.end(),
          [&](const core::FreeResource& f) { return f.resource == r; });
      if (!free) busy.push_back(r);
    }
    const std::size_t circuits = std::min<std::size_t>(
        {idle.size(), busy.size(), static_cast<std::size_t>(2)});
    for (std::size_t i = 0; i < circuits; ++i) {
      const auto circuit = core::first_free_path(
          net, idle[i], [&](topo::ResourceId r) { return r == busy[i]; });
      if (circuit) net.establish(*circuit);
    }
    return problem;
  }
};

TEST_P(PropertySweep, Theorem2MaxFlowEqualsGroundTruth) {
  const SweepCase& param = GetParam();
  topo::Network net = topo::make_named(param.topology, param.n);
  util::Rng rng(param.seed);
  core::MaxFlowScheduler max_flow;
  core::ExhaustiveScheduler exhaustive(5'000'000);
  for (int round = 0; round < 4; ++round) {
    const core::Problem problem = make_instance(net, rng);
    const core::ScheduleResult flow_result = max_flow.schedule(problem);
    EXPECT_FALSE(core::verify_schedule(problem, flow_result).has_value());
    try {
      const core::ScheduleResult truth = exhaustive.schedule(problem);
      EXPECT_EQ(flow_result.allocated(), truth.allocated())
          << param.topology << param.n << " seed " << param.seed;
    } catch (const std::runtime_error&) {
      // Instance too large for exhaustive search; skip the comparison.
    }
  }
}

TEST_P(PropertySweep, FlowIsLegalAndCutTight) {
  const SweepCase& param = GetParam();
  topo::Network net = topo::make_named(param.topology, param.n);
  util::Rng rng(param.seed ^ 0xabcdef);
  for (int round = 0; round < 4; ++round) {
    const core::Problem problem = make_instance(net, rng);
    core::TransformResult transformed = core::transformation1(problem);
    const auto result = flow::max_flow_dinic(transformed.net);
    EXPECT_FALSE(
        flow::validate_flow(transformed.net, result.value).has_value());
    EXPECT_TRUE(flow::is_zero_one_flow(transformed.net));
    const flow::MinCut cut = flow::min_cut_from_flow(transformed.net);
    EXPECT_EQ(cut.capacity, result.value);
  }
}

TEST_P(PropertySweep, TokenMachineRealizesDinic) {
  const SweepCase& param = GetParam();
  topo::Network net = topo::make_named(param.topology, param.n);
  util::Rng rng(param.seed ^ 0x1234);
  core::MaxFlowScheduler dinic;
  for (int round = 0; round < 4; ++round) {
    const core::Problem problem = make_instance(net, rng);
    token::TokenMachine machine(problem);
    const core::ScheduleResult token_result = machine.run();
    EXPECT_FALSE(core::verify_schedule(problem, token_result).has_value());
    EXPECT_EQ(token_result.allocated(), dinic.schedule(problem).allocated());
  }
}

TEST_P(PropertySweep, ElementMachineRealizesDinic) {
  const SweepCase& param = GetParam();
  topo::Network net = topo::make_named(param.topology, param.n);
  util::Rng rng(param.seed ^ 0x4321);
  core::MaxFlowScheduler dinic;
  for (int round = 0; round < 4; ++round) {
    const core::Problem problem = make_instance(net, rng);
    token::ElementMachine machine(problem);
    const core::ScheduleResult element_result = machine.run();
    EXPECT_FALSE(core::verify_schedule(problem, element_result).has_value());
    EXPECT_EQ(element_result.allocated(),
              dinic.schedule(problem).allocated());
  }
}

TEST_P(PropertySweep, Theorem3CountFirstThenCost) {
  const SweepCase& param = GetParam();
  topo::Network net = topo::make_named(param.topology, param.n);
  util::Rng rng(param.seed ^ 0x9999);
  core::MaxFlowScheduler max_flow;
  core::MinCostScheduler min_cost;
  for (int round = 0; round < 3; ++round) {
    core::Problem problem = make_instance(net, rng);
    for (auto& request : problem.requests) {
      request.priority = static_cast<std::int32_t>(rng.uniform_int(1, 10));
    }
    for (auto& resource : problem.free_resources) {
      resource.preference = static_cast<std::int32_t>(rng.uniform_int(1, 10));
    }
    const core::ScheduleResult cost_result = min_cost.schedule(problem);
    EXPECT_FALSE(core::verify_schedule(problem, cost_result).has_value());
    EXPECT_EQ(cost_result.allocated(), max_flow.schedule(problem).allocated())
        << "min-cost scheduling must not sacrifice allocation count";
  }
}

TEST_P(PropertySweep, SchedulerDominanceChain) {
  // optimal >= greedy, and every scheduler's output is realizable.
  const SweepCase& param = GetParam();
  topo::Network net = topo::make_named(param.topology, param.n);
  util::Rng rng(param.seed ^ 0x777);
  core::MaxFlowScheduler optimal;
  core::GreedyScheduler greedy;
  core::RandomScheduler random_sched(util::Rng(param.seed));
  for (int round = 0; round < 4; ++round) {
    const core::Problem problem = make_instance(net, rng);
    const auto opt = optimal.schedule(problem);
    const auto grd = greedy.schedule(problem);
    const auto rnd = random_sched.schedule(problem);
    EXPECT_FALSE(core::verify_schedule(problem, grd).has_value());
    EXPECT_FALSE(core::verify_schedule(problem, rnd).has_value());
    EXPECT_GE(opt.allocated(), grd.allocated());
    EXPECT_GE(opt.allocated(), rnd.allocated());
  }
}

TEST_P(PropertySweep, SchedulersAvoidFaultyElements) {
  // Invariant 5 under faults: with a random fault pattern applied, every
  // scheduler's output must stay realizable and must not touch a single
  // faulty element, and the (fault-aware) token machine must still equal
  // Dinic on the fault-masked network.
  const SweepCase& param = GetParam();
  util::Rng rng(param.seed ^ 0xfa);
  core::MaxFlowScheduler dinic;
  core::GreedyScheduler greedy;
  core::MinCostScheduler min_cost;
  const auto uses_faulty = [](const topo::Network& net,
                              const core::ScheduleResult& result) {
    for (const core::Assignment& assignment : result.assignments) {
      for (const topo::LinkId l : assignment.circuit.links) {
        if (net.link_faulty(l)) return true;
      }
    }
    return false;
  };
  for (int round = 0; round < 3; ++round) {
    topo::Network net = topo::make_named(param.topology, param.n);
    const core::Problem problem = make_instance(net, rng);
    // Random fault pattern: up to three fabric links plus maybe a switch.
    const fault::FaultConfig fault_config;
    std::vector<topo::LinkId> eligible;
    for (topo::LinkId l = 0; l < net.link_count(); ++l) {
      if (fault::link_eligible(net, l, fault_config)) eligible.push_back(l);
    }
    if (!eligible.empty()) {
      const auto kills = rng.uniform_int(
          0, std::min<std::int64_t>(
                 3, static_cast<std::int64_t>(eligible.size())));
      for (std::int64_t k = 0; k < kills; ++k) {
        net.fail_link(eligible[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(eligible.size()) - 1))]);
      }
    }
    if (net.switch_count() > 0 && rng.uniform_int(0, 1) == 1) {
      net.fail_switch(static_cast<topo::SwitchId>(
          rng.uniform_int(0, net.switch_count() - 1)));
    }

    const auto opt = dinic.schedule(problem);
    const auto grd = greedy.schedule(problem);
    const auto cost = min_cost.schedule(problem);
    for (const auto* result : {&opt, &grd, &cost}) {
      EXPECT_FALSE(core::verify_schedule(problem, *result).has_value());
      EXPECT_FALSE(uses_faulty(net, *result))
          << param.topology << param.n << " seed " << param.seed;
    }
    EXPECT_GE(opt.allocated(), grd.allocated());

    token::TokenMachine machine(problem);
    token::TokenStats stats;
    const auto token_result = machine.run(&stats);
    EXPECT_FALSE(stats.watchdog_fired);
    EXPECT_FALSE(core::verify_schedule(problem, token_result).has_value());
    EXPECT_FALSE(uses_faulty(net, token_result));
    EXPECT_EQ(token_result.allocated(), opt.allocated())
        << param.topology << param.n << " seed " << param.seed;

    token::ElementMachine element(problem);
    const auto element_result = element.run();
    EXPECT_FALSE(uses_faulty(net, element_result));
    EXPECT_EQ(element_result.allocated(), opt.allocated());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, PropertySweep,
    ::testing::Values(SweepCase{"omega", 8, 101}, SweepCase{"omega", 8, 102},
                      SweepCase{"omega", 16, 103},
                      SweepCase{"baseline", 8, 104},
                      SweepCase{"cube", 8, 105}, SweepCase{"cube", 8, 106},
                      SweepCase{"butterfly", 8, 107},
                      SweepCase{"benes", 8, 108},
                      SweepCase{"crossbar", 8, 109},
                      SweepCase{"omega", 4, 110}, SweepCase{"cube", 4, 111},
                      SweepCase{"baseline", 16, 112},
                      SweepCase{"gamma", 8, 113}),
    sweep_name);

}  // namespace
}  // namespace rsin
