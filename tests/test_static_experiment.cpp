#include "sim/static_experiment.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/hetero.hpp"

#include "topo/builders.hpp"

namespace rsin::sim {
namespace {

TEST(StaticExperiment, DeterministicUnderSameSeed) {
  const topo::Network net = topo::make_omega(8);
  core::MaxFlowScheduler scheduler;
  StaticExperimentConfig config;
  config.trials = 50;
  config.seed = 99;
  const auto a = run_static_experiment(net, scheduler, config);
  const auto b = run_static_experiment(net, scheduler, config);
  EXPECT_EQ(a.total_allocated, b.total_allocated);
  EXPECT_EQ(a.total_opportunities, b.total_opportunities);
}

TEST(StaticExperiment, CrossbarNeverBlocks) {
  // A crossbar is nonblocking: the optimal scheduler must allocate every
  // opportunity, i.e. blocking probability exactly zero.
  const topo::Network net = topo::make_crossbar(8, 8);
  core::MaxFlowScheduler scheduler;
  StaticExperimentConfig config;
  config.trials = 100;
  config.seed = 7;
  const auto result = run_static_experiment(net, scheduler, config);
  EXPECT_EQ(result.blocking_probability(), 0.0);
  EXPECT_EQ(result.total_allocated, result.total_opportunities);
}

TEST(StaticExperiment, OptimalBlocksLessThanGreedy) {
  const topo::Network net = topo::make_omega(8);
  core::MaxFlowScheduler optimal;
  core::GreedyScheduler greedy;
  StaticExperimentConfig config;
  config.trials = 200;
  config.seed = 3;
  const auto optimal_result = run_static_experiment(net, optimal, config);
  const auto greedy_result = run_static_experiment(net, greedy, config);
  EXPECT_LT(optimal_result.blocking_probability(),
            greedy_result.blocking_probability());
}

TEST(StaticExperiment, BackgroundTrafficIncreasesBlocking) {
  const topo::Network net = topo::make_omega(8);
  core::MaxFlowScheduler scheduler;
  StaticExperimentConfig free_config;
  free_config.trials = 150;
  free_config.seed = 4;
  StaticExperimentConfig busy_config = free_config;
  busy_config.background_circuits = 2;
  const auto free_result = run_static_experiment(net, scheduler, free_config);
  const auto busy_result = run_static_experiment(net, scheduler, busy_config);
  EXPECT_LE(free_result.blocking_probability(),
            busy_result.blocking_probability());
}

TEST(StaticExperiment, HeterogeneousTypesReduceOpportunities) {
  const topo::Network net = topo::make_omega(8);
  core::HeteroSequentialScheduler scheduler;
  StaticExperimentConfig config;
  config.trials = 50;
  config.resource_types = 2;
  config.seed = 5;
  const auto result = run_static_experiment(net, scheduler, config);
  // Opportunities with type matching are at most the homogeneous count.
  EXPECT_LE(result.total_opportunities,
            std::min(result.total_requests, result.total_free_resources) +
                result.total_opportunities);  // sanity; non-negative
  EXPECT_GE(result.total_opportunities, result.total_allocated);
}

TEST(StaticExperiment, PriorityLevelsProduceCosts) {
  const topo::Network net = topo::make_omega(8);
  core::MinCostScheduler scheduler;
  StaticExperimentConfig config;
  config.trials = 30;
  config.priority_levels = 10;
  config.seed = 6;
  const auto result = run_static_experiment(net, scheduler, config);
  EXPECT_GT(result.total_cost, 0);
}

TEST(StaticExperiment, ConfidenceIntervalBehavesSanely) {
  const topo::Network net = topo::make_omega(8);
  core::GreedyScheduler scheduler;
  StaticExperimentConfig small_config;
  small_config.trials = 200;
  small_config.seed = 8;
  StaticExperimentConfig large_config = small_config;
  large_config.trials = 4000;
  const auto small_run = run_static_experiment(net, scheduler, small_config);
  const auto large_run = run_static_experiment(net, scheduler, large_config);
  EXPECT_EQ(small_run.batch_blocking.size(), 10u);
  EXPECT_GT(small_run.blocking_ci95(), 0.0);
  EXPECT_LT(large_run.blocking_ci95(), small_run.blocking_ci95())
      << "more trials shrink the interval";
  // The interval brackets the point estimate's own batch mean reasonably:
  // every batch blocking probability is a valid probability.
  for (const double b : large_run.batch_blocking) {
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
  }
}

TEST(StaticExperiment, ParallelMatchesSequentialForStatelessSchedulers) {
  const topo::Network net = topo::make_omega(8);
  StaticExperimentConfig config;
  config.trials = 400;
  config.seed = 31;
  core::MaxFlowScheduler sequential_scheduler;
  const auto sequential =
      run_static_experiment(net, sequential_scheduler, config);
  for (const int threads : {1, 2, 4}) {
    const auto parallel = run_static_experiment_parallel(
        net, [] { return std::make_unique<core::MaxFlowScheduler>(); },
        config, threads);
    EXPECT_EQ(parallel.total_allocated, sequential.total_allocated)
        << threads << " threads";
    EXPECT_EQ(parallel.total_opportunities, sequential.total_opportunities);
    EXPECT_EQ(parallel.trials, sequential.trials);
    ASSERT_EQ(parallel.batch_blocking.size(),
              sequential.batch_blocking.size());
    for (std::size_t b = 0; b < parallel.batch_blocking.size(); ++b) {
      EXPECT_DOUBLE_EQ(parallel.batch_blocking[b],
                       sequential.batch_blocking[b]);
    }
  }
}

TEST(StaticExperiment, ParallelThreadCountInvariantForStatefulSchedulers) {
  // A stateful scheduler (RandomScheduler) is instantiated once per batch,
  // so the aggregate is identical for any worker count.
  const topo::Network net = topo::make_omega(8);
  StaticExperimentConfig config;
  config.trials = 300;
  config.seed = 32;
  const auto factory = [] {
    return std::make_unique<core::RandomScheduler>(util::Rng(5));
  };
  const auto one = run_static_experiment_parallel(net, factory, config, 1);
  const auto four = run_static_experiment_parallel(net, factory, config, 4);
  EXPECT_EQ(one.total_allocated, four.total_allocated);
  EXPECT_EQ(one.total_opportunities, four.total_opportunities);
}

TEST(StaticExperiment, PooledMatchesSequentialAtEveryThreadCount) {
  // The sharded warm-context pool keeps one scheduler per worker alive
  // across batches, so warm history differs with every thread count — but
  // the aggregate must stay bit-identical to the sequential cold run: trial
  // instances depend only on the per-batch RNG stream and the warm solve's
  // value equals the cold solve's.
  const topo::Network net = topo::make_omega(8);
  StaticExperimentConfig config;
  config.trials = 400;
  config.seed = 31;
  core::MaxFlowScheduler cold;
  const auto sequential = run_static_experiment(net, cold, config);
  for (const int threads : {1, 2, 4, 7}) {
    core::WarmContextPool pool(static_cast<std::size_t>(threads));
    const auto pooled =
        run_static_experiment_pooled(net, pool, config, threads);
    EXPECT_EQ(pooled.total_allocated, sequential.total_allocated)
        << threads << " threads";
    EXPECT_EQ(pooled.total_opportunities, sequential.total_opportunities);
    EXPECT_EQ(pooled.total_requests, sequential.total_requests);
    EXPECT_EQ(pooled.total_cost, sequential.total_cost);
    EXPECT_EQ(pooled.trials, sequential.trials);
    ASSERT_EQ(pooled.batch_blocking.size(), sequential.batch_blocking.size());
    for (std::size_t b = 0; b < pooled.batch_blocking.size(); ++b) {
      // Bitwise: each batch total is integer-derived, so the quotient is
      // the identical double.
      EXPECT_EQ(pooled.batch_blocking[b], sequential.batch_blocking[b]);
    }
    const auto stats = pool.stats();
    EXPECT_EQ(stats.returns, stats.checkouts);  // every lease came home
    EXPECT_EQ(stats.idle, stats.cold_creates);
  }
}

TEST(StaticExperiment, PooledSweepsReuseContextsAcrossRuns) {
  const topo::Network net = topo::make_omega(8);
  StaticExperimentConfig config;
  config.trials = 100;
  config.seed = 17;
  core::WarmContextPool pool(2);
  const auto first = run_static_experiment_pooled(net, pool, config, 2);
  const auto second = run_static_experiment_pooled(net, pool, config, 2);
  EXPECT_EQ(first.total_allocated, second.total_allocated);
  const auto stats = pool.stats();
  // The second sweep's workers found the first sweep's contexts idle: no
  // new creates. A shard's context only carries a built skeleton if its
  // sweep-1 worker won at least one batch (the other worker can race to
  // drain them all), so at least one — usually both — re-checkout is a
  // warm hit and the rest are reused-buffer misses.
  EXPECT_EQ(stats.cold_creates, 2);
  EXPECT_GE(stats.warm_hits, 1);
  EXPECT_EQ(stats.warm_hits + stats.shape_misses, 2);
}

TEST(StaticExperiment, PooledRejectsHeterogeneousAndPriorityConfigs) {
  const topo::Network net = topo::make_omega(8);
  core::WarmContextPool pool(1);
  StaticExperimentConfig config;
  config.trials = 10;
  config.resource_types = 2;
  EXPECT_THROW(run_static_experiment_pooled(net, pool, config, 1),
               std::invalid_argument);
  config.resource_types = 1;
  config.priority_levels = 3;
  EXPECT_THROW(run_static_experiment_pooled(net, pool, config, 1),
               std::invalid_argument);
  config.priority_levels = 0;
  EXPECT_THROW(run_static_experiment_pooled(net, pool, config, 0),
               std::invalid_argument);
}

TEST(StaticExperiment, ParallelRejectsBadThreadCount) {
  const topo::Network net = topo::make_omega(4);
  StaticExperimentConfig config;
  EXPECT_THROW(
      run_static_experiment_parallel(
          net, [] { return std::make_unique<core::MaxFlowScheduler>(); },
          config, 0),
      std::invalid_argument);
}

TEST(StaticExperiment, RejectsBadConfig) {
  const topo::Network net = topo::make_omega(4);
  core::MaxFlowScheduler scheduler;
  StaticExperimentConfig config;
  config.trials = 0;
  EXPECT_THROW(run_static_experiment(net, scheduler, config),
               std::invalid_argument);
  config.trials = 1;
  config.resource_types = 0;
  EXPECT_THROW(run_static_experiment(net, scheduler, config),
               std::invalid_argument);
}

TEST(StaticExperiment, ExtremeProbabilities) {
  const topo::Network net = topo::make_omega(8);
  core::MaxFlowScheduler scheduler;
  StaticExperimentConfig config;
  config.trials = 20;
  config.request_probability = 0.0;
  const auto none = run_static_experiment(net, scheduler, config);
  EXPECT_EQ(none.total_requests, 0);
  EXPECT_EQ(none.blocking_probability(), 0.0);

  config.request_probability = 1.0;
  config.free_probability = 1.0;
  const auto full = run_static_experiment(net, scheduler, config);
  EXPECT_EQ(full.total_requests, 20 * 8);
  EXPECT_EQ(full.total_opportunities, 20 * 8);
}

}  // namespace
}  // namespace rsin::sim
