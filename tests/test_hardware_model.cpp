#include "token/hardware_model.hpp"

#include <gtest/gtest.h>

#include "topo/builders.hpp"

namespace rsin::token {
namespace {

TEST(HardwareModel, CountsElementsOfAnOmega) {
  const topo::Network net = topo::make_omega(8);
  const HardwareCost cost = estimate_hardware(net);
  EXPECT_EQ(cost.elements, 8 + 8 + 12);  // RQs + RSs + NSs
  // Registers: terminals 8+8 at (3 + 1*2); switches 12 at (3 + 4*2).
  EXPECT_EQ(cost.registers, 16 * 5 + 12 * 11);
  EXPECT_EQ(cost.bus_taps, (8 + 8 + 12) * 3);
}

TEST(HardwareModel, PerSwitchCostIsConstantAcrossSizes) {
  // Subtract the terminal (RQ/RS) contribution; what remains divided by
  // the switch count must be the fixed 2x2-NS cost at any fabric size —
  // the paper's "very low gate count" is per box, independent of n.
  const HardwareModel model;
  const std::int64_t terminal_gates =
      model.gates_per_element + model.gates_per_port;
  const std::int64_t ns_gates =
      model.gates_per_element + 4 * model.gates_per_port;
  for (const std::int32_t n : {8, 16, 64}) {
    const topo::Network net = topo::make_omega(n);
    const HardwareCost cost = estimate_hardware(net);
    const std::int64_t switch_gates = cost.gates - 2 * n * terminal_gates;
    EXPECT_EQ(switch_gates % net.switch_count(), 0);
    EXPECT_EQ(switch_gates / net.switch_count(), ns_gates);
  }
}

TEST(HardwareModel, GrowsLinearlyInElements) {
  // n x n Omega has n + n + (n/2)log2(n) elements; doubling n slightly
  // more than doubles the totals — strictly subquadratic.
  const HardwareCost c8 = estimate_hardware(topo::make_omega(8));
  const HardwareCost c16 = estimate_hardware(topo::make_omega(16));
  const HardwareCost c32 = estimate_hardware(topo::make_omega(32));
  EXPECT_GT(c16.gates, c8.gates);
  EXPECT_LT(c16.gates, 3 * c8.gates);
  EXPECT_LT(c32.gates, 3 * c16.gates);
}

TEST(HardwareModel, WiderSwitchesCostMore) {
  const HardwareCost omega = estimate_hardware(topo::make_omega(8));
  const HardwareCost gamma = estimate_hardware(topo::make_gamma(8));
  // Gamma's 3x3 switches and extra stage outweigh Omega's 2x2 boxes.
  EXPECT_GT(gamma.gates, omega.gates);
  EXPECT_GT(gamma.registers, omega.registers);
}

TEST(HardwareModel, CustomModelConstants) {
  HardwareModel model;
  model.state_bits = 0;
  model.flops_per_port = 1;
  model.gates_per_port = 0;
  model.gates_per_element = 1;
  model.bus_taps_per_element = 0;
  const topo::Network net = topo::make_crossbar(4, 4);
  const HardwareCost cost = estimate_hardware(net, model);
  EXPECT_EQ(cost.elements, 9);
  EXPECT_EQ(cost.gates, 9);
  EXPECT_EQ(cost.registers, 4 + 4 + 8);  // ports only
  EXPECT_EQ(cost.bus_taps, 0);
}

}  // namespace
}  // namespace rsin::token
