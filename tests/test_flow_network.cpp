#include "flow/network.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "flow/validate.hpp"

namespace rsin::flow {
namespace {

TEST(FlowNetwork, StartsEmpty) {
  FlowNetwork net;
  EXPECT_EQ(net.node_count(), 0u);
  EXPECT_EQ(net.arc_count(), 0u);
  EXPECT_EQ(net.source(), kInvalidNode);
  EXPECT_EQ(net.sink(), kInvalidNode);
}

TEST(FlowNetwork, AddNodeAssignsDenseIds) {
  FlowNetwork net;
  EXPECT_EQ(net.add_node("a"), 0);
  EXPECT_EQ(net.add_node("b"), 1);
  EXPECT_EQ(net.add_node(), 2);
  EXPECT_EQ(net.label(0), "a");
  EXPECT_EQ(net.label(2), "");
}

TEST(FlowNetwork, AddArcRecordsEndpointsAndAdjacency) {
  FlowNetwork net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const ArcId arc = net.add_arc(a, b, 3, 7);
  EXPECT_EQ(net.arc(arc).from, a);
  EXPECT_EQ(net.arc(arc).to, b);
  EXPECT_EQ(net.arc(arc).capacity, 3);
  EXPECT_EQ(net.arc(arc).cost, 7);
  EXPECT_EQ(net.arc(arc).flow, 0);
  ASSERT_EQ(net.out_arcs(a).size(), 1u);
  EXPECT_EQ(net.out_arcs(a)[0], arc);
  ASSERT_EQ(net.in_arcs(b).size(), 1u);
  EXPECT_EQ(net.in_arcs(b)[0], arc);
}

TEST(FlowNetwork, RejectsInvalidArcs) {
  FlowNetwork net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  EXPECT_THROW(net.add_arc(a, a, 1), std::invalid_argument);   // self loop
  EXPECT_THROW(net.add_arc(a, b, -1), std::invalid_argument);  // negative cap
  EXPECT_THROW(net.add_arc(a, 99, 1), std::invalid_argument);  // unknown node
}

TEST(FlowNetwork, SetFlowEnforcesCapacity) {
  FlowNetwork net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const ArcId arc = net.add_arc(a, b, 2);
  net.set_flow(arc, 2);
  EXPECT_EQ(net.arc(arc).flow, 2);
  EXPECT_THROW(net.set_flow(arc, 3), std::invalid_argument);
  EXPECT_THROW(net.set_flow(arc, -1), std::invalid_argument);
}

TEST(FlowNetwork, ClearFlowZeroesEverything) {
  FlowNetwork net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const ArcId arc = net.add_arc(a, b, 2);
  net.set_flow(arc, 1);
  net.clear_flow();
  EXPECT_EQ(net.arc(arc).flow, 0);
}

TEST(FlowNetwork, FlowValueIsNetSourceOutput) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId a = net.add_node("a");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  const ArcId sa = net.add_arc(s, a, 5);
  const ArcId at = net.add_arc(a, t, 5);
  net.set_flow(sa, 4);
  net.set_flow(at, 4);
  EXPECT_EQ(net.flow_value(), 4);
}

TEST(FlowNetwork, FlowCostSumsCostTimesFlow) {
  FlowNetwork net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const ArcId x = net.add_arc(a, b, 2, 3);
  const ArcId y = net.add_arc(a, b, 2, 5);
  net.set_flow(x, 2);
  net.set_flow(y, 1);
  EXPECT_EQ(net.flow_cost(), 2 * 3 + 1 * 5);
}

TEST(FlowNetwork, UnitCapacityDetection) {
  FlowNetwork net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_arc(a, b, 1);
  EXPECT_TRUE(net.is_unit_capacity());
  net.add_arc(a, b, 2);
  EXPECT_FALSE(net.is_unit_capacity());
}

TEST(FlowNetwork, FindNodeByLabel) {
  FlowNetwork net;
  net.add_node("s");
  const NodeId p = net.add_node("p3");
  EXPECT_EQ(net.find_node("p3"), p);
  EXPECT_EQ(net.find_node("missing"), kInvalidNode);
}

TEST(FlowNetwork, PrintMentionsArcs) {
  FlowNetwork net;
  const NodeId a = net.add_node("alpha");
  const NodeId b = net.add_node("beta");
  net.add_arc(a, b, 1);
  std::ostringstream out;
  out << net;
  EXPECT_NE(out.str().find("alpha -> beta"), std::string::npos);
}

TEST(ValidateFlow, AcceptsLegalFlow) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId a = net.add_node("a");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  net.set_flow(net.add_arc(s, a, 1), 1);
  net.set_flow(net.add_arc(a, t, 1), 1);
  EXPECT_FALSE(validate_flow(net).has_value());
}

TEST(ValidateFlow, DetectsConservationViolation) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId a = net.add_node("a");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  net.set_flow(net.add_arc(s, a, 1), 1);
  net.add_arc(a, t, 1);  // flow vanishes at a
  const auto violation = validate_flow(net);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->kind, FlowViolation::Kind::kConservation);
}

TEST(ValidateFlow, DetectsWrongExpectedValue) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  net.set_flow(net.add_arc(s, t, 2), 1);
  EXPECT_FALSE(validate_flow(net, 1).has_value());
  EXPECT_TRUE(validate_flow(net, 2).has_value());
}

TEST(ValidateFlow, ZeroOneFlowPredicate) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId t = net.add_node("t");
  const ArcId arc = net.add_arc(s, t, 2);
  net.set_source(s);
  net.set_sink(t);
  net.set_flow(arc, 1);
  EXPECT_TRUE(is_zero_one_flow(net));
  net.set_flow(arc, 2);
  EXPECT_FALSE(is_zero_one_flow(net));
}

}  // namespace
}  // namespace rsin::flow
