#include "core/routing.hpp"

#include <gtest/gtest.h>

#include "topo/builders.hpp"

namespace rsin::core {
namespace {

TEST(Routing, UniquePathInOmega) {
  const topo::Network net = topo::make_omega(8);
  const auto paths = enumerate_free_paths(net, 3, 5);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(net.circuit_contiguous(paths.front()));
  EXPECT_EQ(paths.front().links.size(), 4u)  // p->sw, 2 inter-stage, sw->r
      << "an 8x8 Omega circuit crosses four links";
}

TEST(Routing, EnumerationRespectsLimit) {
  const topo::Network net = topo::make_benes(8);
  const auto all = enumerate_free_paths(net, 0, 0);
  ASSERT_GT(all.size(), 1u);
  const auto limited = enumerate_free_paths(net, 0, 0, 1);
  EXPECT_EQ(limited.size(), 1u);
  EXPECT_TRUE(enumerate_free_paths(net, 0, 0, 0).empty());
}

TEST(Routing, OccupiedLinksExcluded) {
  topo::Network net = topo::make_omega(8);
  const auto before = enumerate_free_paths(net, 3, 5);
  ASSERT_EQ(before.size(), 1u);
  net.occupy_link(before.front().links[1]);
  EXPECT_TRUE(enumerate_free_paths(net, 3, 5).empty());
}

TEST(Routing, FirstFreePathHonorsPredicate) {
  const topo::Network net = topo::make_omega(8);
  const auto circuit = first_free_path(
      net, 0, [](topo::ResourceId r) { return r == 6; });
  ASSERT_TRUE(circuit.has_value());
  EXPECT_EQ(circuit->resource, 6);
  EXPECT_EQ(circuit->processor, 0);
  const auto none = first_free_path(
      net, 0, [](topo::ResourceId) { return false; });
  EXPECT_FALSE(none.has_value());
}

TEST(Routing, FirstFreePathCountsOperations) {
  const topo::Network net = topo::make_omega(8);
  std::int64_t ops = 0;
  first_free_path(net, 0, [](topo::ResourceId r) { return r == 7; }, &ops);
  EXPECT_GT(ops, 0);
}

TEST(Routing, ReachabilityShrinksUnderOccupancy) {
  topo::Network net = topo::make_omega(8);
  EXPECT_EQ(reachable_free_resources(net, 2).size(), 8u);
  // Occupy the processor's injection link: nothing reachable.
  net.occupy_link(net.processor_link(2));
  EXPECT_TRUE(reachable_free_resources(net, 2).empty());
}

TEST(Routing, PartialOccupancyPartialReachability) {
  topo::Network net = topo::make_omega(8);
  // Occupy p0's unique path to r0 at the last link; r0 unreachable from 0,
  // everything else still reachable.
  const auto path = enumerate_free_paths(net, 0, 0);
  ASSERT_EQ(path.size(), 1u);
  net.occupy_link(path.front().links.back());
  const auto reachable = reachable_free_resources(net, 0);
  EXPECT_EQ(reachable.size(), 7u);
  EXPECT_TRUE(std::find(reachable.begin(), reachable.end(), 0) ==
              reachable.end());
}

TEST(Routing, RejectsInvalidIds) {
  const topo::Network net = topo::make_omega(4);
  EXPECT_THROW(enumerate_free_paths(net, 9, 0), std::invalid_argument);
  EXPECT_THROW(enumerate_free_paths(net, 0, 9), std::invalid_argument);
  EXPECT_THROW(reachable_free_resources(net, -1), std::invalid_argument);
}

TEST(Routing, BenesEnumeratesDisjointAlternatives) {
  const topo::Network net = topo::make_benes(4);
  const auto paths = enumerate_free_paths(net, 1, 2);
  ASSERT_EQ(paths.size(), 2u);
  // The two paths differ in at least one link.
  EXPECT_NE(paths[0].links, paths[1].links);
}

}  // namespace
}  // namespace rsin::core
