// Write-ahead journal edge cases: framing round-trips, torn tails at every
// interesting cut point, checksum and header damage, group-commit
// buffering, and append-after-truncation (see src/svc/journal.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "svc/journal.hpp"

namespace rsin::svc {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(std::string(::testing::TempDir()) + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Three records with distinct sizes, flushed to a fresh journal at `epoch`.
const std::vector<std::string> kRecords = {
    "tenant name=t0 topology=omega n=8",
    "req tenant=t0 id=1 proc=3 prio=0",
    "cycle tenant=t0 id=2 seq=1 hash=00000000deadbeef",
};

constexpr std::size_t kFrameBytes = 8;  // u32 size + u32 crc per record.

void write_journal(const std::string& path, std::uint64_t epoch) {
  Journal journal = Journal::create(path, epoch);
  for (const std::string& record : kRecords) journal.append(record);
  journal.flush();
}

std::uint64_t record_offset(std::size_t index) {
  std::uint64_t offset = Journal::kHeaderBytes;
  for (std::size_t i = 0; i < index; ++i) {
    offset += kFrameBytes + kRecords[i].size();
  }
  return offset;
}

TEST(Journal, RoundTripPreservesRecordsAndEpoch) {
  TempFile file("journal_roundtrip.bin");
  write_journal(file.path, 7);

  const Journal::ScanResult scan = Journal::scan(file.path);
  EXPECT_EQ(scan.epoch, 7u);
  EXPECT_EQ(scan.records, kRecords);
  EXPECT_FALSE(scan.truncated);
  EXPECT_EQ(scan.valid_bytes, record_offset(kRecords.size()));
  EXPECT_EQ(std::filesystem::file_size(file.path), scan.valid_bytes);
}

TEST(Journal, EmptyJournalScansClean) {
  TempFile file("journal_empty.bin");
  { Journal journal = Journal::create(file.path, 3); }

  const Journal::ScanResult scan = Journal::scan(file.path);
  EXPECT_EQ(scan.epoch, 3u);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.truncated);
  EXPECT_EQ(scan.valid_bytes, Journal::kHeaderBytes);
}

TEST(Journal, MissingFileThrows) {
  EXPECT_THROW((void)Journal::scan(std::string(::testing::TempDir()) +
                                   "journal_does_not_exist.bin"),
               JournalError);
}

TEST(Journal, TornTailAtEveryCutPointDropsOnlyTheTornRecord) {
  TempFile file("journal_torn.bin");
  write_journal(file.path, 1);
  const std::string full = read_bytes(file.path);
  const std::uint64_t third = record_offset(2);

  // Every way a crash can tear the final record: one byte of the frame,
  // the full frame but no payload, a partial payload, all but one byte.
  const std::vector<std::uint64_t> cuts = {
      third + 1, third + kFrameBytes, third + kFrameBytes + 5,
      record_offset(3) - 1};
  for (const std::uint64_t cut : cuts) {
    write_bytes(file.path, full.substr(0, cut));
    const Journal::ScanResult scan = Journal::scan(file.path);
    EXPECT_TRUE(scan.truncated) << "cut=" << cut;
    EXPECT_EQ(scan.damage_offset, third) << "cut=" << cut;
    EXPECT_EQ(scan.valid_bytes, third) << "cut=" << cut;
    ASSERT_EQ(scan.records.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(scan.records[0], kRecords[0]);
    EXPECT_EQ(scan.records[1], kRecords[1]);
  }
}

TEST(Journal, CorruptChecksumStopsTheScanThere) {
  TempFile file("journal_crc.bin");
  write_journal(file.path, 1);
  std::string bytes = read_bytes(file.path);
  // Flip one payload byte of the middle record.
  bytes[record_offset(1) + kFrameBytes + 2] ^= 0x40;
  write_bytes(file.path, bytes);

  const Journal::ScanResult scan = Journal::scan(file.path);
  EXPECT_TRUE(scan.truncated);
  EXPECT_EQ(scan.damage_offset, record_offset(1));
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], kRecords[0]);
  EXPECT_NE(scan.damage.find("checksum"), std::string::npos)
      << scan.damage;
}

TEST(Journal, ImplausibleRecordSizeIsDamageNotAnAllocation) {
  TempFile file("journal_size.bin");
  write_journal(file.path, 1);
  std::string bytes = read_bytes(file.path).substr(0, record_offset(3));
  // Append a frame claiming a ~2 GB payload.
  const std::uint32_t huge = 0x7fffffffu;
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  }
  bytes += std::string(4, '\0');
  write_bytes(file.path, bytes);

  const Journal::ScanResult scan = Journal::scan(file.path);
  EXPECT_TRUE(scan.truncated);
  EXPECT_EQ(scan.damage_offset, record_offset(3));
  EXPECT_EQ(scan.records.size(), kRecords.size());
}

TEST(Journal, AlienHeaderThrows) {
  TempFile file("journal_magic.bin");
  write_bytes(file.path, std::string(64, 'x'));
  EXPECT_THROW((void)Journal::scan(file.path), JournalError);
}

TEST(Journal, ShortHeaderThrows) {
  TempFile file("journal_short.bin");
  write_bytes(file.path, "RSIN");  // Torn during create.
  EXPECT_THROW((void)Journal::scan(file.path), JournalError);
}

TEST(Journal, AppendToTruncatesTornTailBeforeAppending) {
  TempFile file("journal_append.bin");
  write_journal(file.path, 5);
  const std::string full = read_bytes(file.path);
  write_bytes(file.path, full.substr(0, record_offset(2) + 3));  // Torn 3rd.

  const Journal::ScanResult torn = Journal::scan(file.path);
  ASSERT_TRUE(torn.truncated);
  {
    Journal journal = Journal::append_to(file.path, torn);
    EXPECT_EQ(journal.epoch(), 5u);
    journal.append("req tenant=t0 id=9 proc=0 prio=1");
    journal.flush();
  }

  const Journal::ScanResult healed = Journal::scan(file.path);
  EXPECT_FALSE(healed.truncated);
  ASSERT_EQ(healed.records.size(), 3u);
  EXPECT_EQ(healed.records[0], kRecords[0]);
  EXPECT_EQ(healed.records[1], kRecords[1]);
  EXPECT_EQ(healed.records[2], "req tenant=t0 id=9 proc=0 prio=1");
}

TEST(Journal, GroupCommitBuffersUntilFlush) {
  TempFile file("journal_buffer.bin");
  Journal journal = Journal::create(file.path, 2);
  journal.append(kRecords[0]);
  journal.append(kRecords[1]);
  EXPECT_EQ(journal.records_pending(), 2u);
  EXPECT_EQ(journal.records_appended(), 2u);
  // Nothing on the file yet: a crash here loses both, which is correct
  // because neither client has been acknowledged.
  EXPECT_EQ(std::filesystem::file_size(file.path), Journal::kHeaderBytes);

  journal.flush();
  EXPECT_EQ(journal.records_pending(), 0u);
  const Journal::ScanResult scan = Journal::scan(file.path);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0], kRecords[0]);
  EXPECT_EQ(scan.records[1], kRecords[1]);
}

TEST(Journal, Crc32MatchesKnownVectors) {
  // IEEE 802.3 reference value for "123456789".
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
}

TEST(Journal, ZeroLengthRecordRoundTrips) {
  TempFile file("journal_zero.bin");
  {
    Journal journal = Journal::create(file.path, 4);
    journal.append("");
    journal.append(kRecords[0]);
    journal.flush();
  }
  const Journal::ScanResult scan = Journal::scan(file.path);
  EXPECT_FALSE(scan.truncated);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0], "");
  EXPECT_EQ(scan.records[1], kRecords[0]);
}

TEST(Journal, MaxLengthFieldIsDamageNotAnAllocation) {
  TempFile file("journal_maxlen.bin");
  write_journal(file.path, 1);
  std::string bytes = read_bytes(file.path).substr(0, record_offset(3));
  // A frame whose size field is all-ones (0xffffffff) — what a torn or
  // bit-rotted length write can look like. Scanning must neither try to
  // allocate 4 GB nor walk off the end.
  bytes += std::string(4, '\xff');
  bytes += std::string(4, '\0');
  write_bytes(file.path, bytes);

  const Journal::ScanResult scan = Journal::scan(file.path);
  EXPECT_TRUE(scan.truncated);
  EXPECT_EQ(scan.damage_offset, record_offset(3));
  EXPECT_EQ(scan.valid_bytes, record_offset(3));
  EXPECT_EQ(scan.records, kRecords);
  EXPECT_NE(scan.damage.find("implausible"), std::string::npos)
      << scan.damage;
}

TEST(Journal, CrcFlipInFinalRecordDropsOnlyThatRecord) {
  TempFile file("journal_final_crc.bin");
  write_journal(file.path, 1);
  std::string bytes = read_bytes(file.path);
  // Flip one bit of the final record's *stored checksum* (not payload):
  // the common single-bit rot in the frame itself.
  bytes[record_offset(2) + 4] ^= 0x01;
  write_bytes(file.path, bytes);

  const Journal::ScanResult scan = Journal::scan(file.path);
  EXPECT_TRUE(scan.truncated);
  EXPECT_EQ(scan.damage_offset, record_offset(2));
  EXPECT_EQ(scan.valid_bytes, record_offset(2));
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0], kRecords[0]);
  EXPECT_EQ(scan.records[1], kRecords[1]);
  // append_to over the damage heals the file for new traffic.
  {
    Journal journal = Journal::append_to(file.path, scan);
    journal.append(kRecords[2]);
    journal.flush();
  }
  const Journal::ScanResult healed = Journal::scan(file.path);
  EXPECT_FALSE(healed.truncated);
  ASSERT_EQ(healed.records.size(), 3u);
  EXPECT_EQ(healed.records[2], kRecords[2]);
}

}  // namespace
}  // namespace rsin::svc
