#include "topo/network.hpp"

#include <gtest/gtest.h>

namespace rsin::topo {
namespace {

/// 2 processors -> one 2x2 switch -> 2 resources.
Network tiny_network() {
  Network net(2, 2);
  const SwitchId sw = net.add_switch(2, 2, 0);
  net.add_link({NodeKind::kProcessor, 0, 0}, {NodeKind::kSwitch, sw, 0});
  net.add_link({NodeKind::kProcessor, 1, 0}, {NodeKind::kSwitch, sw, 1});
  net.add_link({NodeKind::kSwitch, sw, 0}, {NodeKind::kResource, 0, 0});
  net.add_link({NodeKind::kSwitch, sw, 1}, {NodeKind::kResource, 1, 0});
  return net;
}

TEST(TopoNetwork, CountsAndStageMetadata) {
  Network net = tiny_network();
  EXPECT_EQ(net.processor_count(), 2);
  EXPECT_EQ(net.resource_count(), 2);
  EXPECT_EQ(net.switch_count(), 1);
  EXPECT_EQ(net.link_count(), 4);
  EXPECT_EQ(net.stage_count(), 1);
  EXPECT_EQ(net.stage_of(0), 0);
}

TEST(TopoNetwork, RejectsInvalidConstruction) {
  EXPECT_THROW(Network(0, 1), std::invalid_argument);
  Network net(1, 1);
  EXPECT_THROW(net.add_switch(0, 2), std::invalid_argument);
  const SwitchId sw = net.add_switch(1, 1);
  // Resource as source / processor as destination are illegal.
  EXPECT_THROW(
      net.add_link({NodeKind::kResource, 0, 0}, {NodeKind::kSwitch, sw, 0}),
      std::invalid_argument);
  EXPECT_THROW(
      net.add_link({NodeKind::kSwitch, sw, 0}, {NodeKind::kProcessor, 0, 0}),
      std::invalid_argument);
}

TEST(TopoNetwork, RejectsDoubleWiring) {
  Network net(1, 1);
  const SwitchId sw = net.add_switch(1, 1);
  net.add_link({NodeKind::kProcessor, 0, 0}, {NodeKind::kSwitch, sw, 0});
  EXPECT_THROW(
      net.add_link({NodeKind::kProcessor, 0, 0}, {NodeKind::kSwitch, sw, 0}),
      std::invalid_argument);
}

TEST(TopoNetwork, LinkOccupancyLifecycle) {
  Network net = tiny_network();
  EXPECT_TRUE(net.link_free(0));
  net.occupy_link(0);
  EXPECT_FALSE(net.link_free(0));
  EXPECT_THROW(net.occupy_link(0), std::invalid_argument);
  EXPECT_EQ(net.occupied_link_count(), 1);
  net.release_link(0);
  EXPECT_TRUE(net.link_free(0));
  net.occupy_link(0);
  net.occupy_link(1);
  net.release_all();
  EXPECT_EQ(net.occupied_link_count(), 0);
}

TEST(TopoNetwork, TerminalLinkLookup) {
  Network net = tiny_network();
  EXPECT_EQ(net.processor_link(0), 0);
  EXPECT_EQ(net.processor_link(1), 1);
  EXPECT_EQ(net.resource_link(0), 2);
  EXPECT_EQ(net.resource_link(1), 3);
}

TEST(TopoNetwork, CircuitContiguityChecks) {
  Network net = tiny_network();
  Circuit good{0, 1, {0, 3}};  // p0 -> switch -> r1
  EXPECT_TRUE(net.circuit_contiguous(good));
  Circuit wrong_endpoint{0, 0, {0, 3}};  // claims r0 but ends at r1
  EXPECT_FALSE(net.circuit_contiguous(wrong_endpoint));
  Circuit gap{0, 1, {0}};  // stops at the switch
  EXPECT_FALSE(net.circuit_contiguous(gap));
  Circuit empty{0, 1, {}};
  EXPECT_FALSE(net.circuit_contiguous(empty));
}

TEST(TopoNetwork, EstablishOccupiesAndReleaseFrees) {
  Network net = tiny_network();
  Circuit circuit{0, 1, {0, 3}};
  net.establish(circuit);
  EXPECT_FALSE(net.link_free(0));
  EXPECT_FALSE(net.link_free(3));
  EXPECT_FALSE(net.circuit_free(circuit));
  net.release(circuit);
  EXPECT_TRUE(net.circuit_free(circuit));
}

TEST(TopoNetwork, EstablishRejectsConflictingCircuits) {
  Network net = tiny_network();
  net.establish(Circuit{0, 1, {0, 3}});
  EXPECT_THROW(net.establish(Circuit{1, 1, {1, 3}}), std::invalid_argument);
  // A disjoint circuit still fits.
  net.establish(Circuit{1, 0, {1, 2}});
  EXPECT_EQ(net.occupied_link_count(), 4);
}

TEST(TopoNetwork, PortNamesArePaperStyle) {
  Network net = tiny_network();
  EXPECT_EQ(net.port_name({NodeKind::kProcessor, 0, 0}, false), "p1");
  EXPECT_EQ(net.port_name({NodeKind::kResource, 1, 0}, true), "r2");
  EXPECT_EQ(net.port_name({NodeKind::kSwitch, 0, 1}, true), "sw0.0:in1");
}

}  // namespace
}  // namespace rsin::topo
