#include "flow/network_simplex.hpp"

#include <gtest/gtest.h>

#include "flow/validate.hpp"
#include "test_helpers.hpp"

namespace rsin::flow {
namespace {

TEST(NetworkSimplex, SolvesTransshipmentChain) {
  // s -> a -> b -> t with widening capacities; min cost is forced.
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  net.add_arc(s, a, 3, 2);
  net.add_arc(a, b, 3, 3);
  net.add_arc(b, t, 3, 4);
  const MinCostFlowResult result = min_cost_flow_network_simplex(net, 3);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.value, 3);
  EXPECT_EQ(result.cost, 3 * (2 + 3 + 4));
  EXPECT_FALSE(validate_flow(net, 3).has_value());
}

TEST(NetworkSimplex, NegativeCostArcIsExploited) {
  // Parallel routes where one contains a negative-cost arc: it must be
  // preferred (other solvers with the no-negative-cycle restriction can't
  // always handle this; network simplex can).
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId a = net.add_node("a");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  net.add_arc(s, a, 1, 5);
  net.add_arc(a, t, 1, -3);
  net.add_arc(s, t, 1, 4);
  const MinCostFlowResult result = min_cost_flow_network_simplex(net, 1);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.cost, 2) << "route through the negative arc: 5 - 3";
}

TEST(NetworkSimplex, ZeroCapacityArcsIgnored) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  net.add_arc(s, t, 0, -100);  // tempting but unusable
  net.add_arc(s, t, 2, 1);
  const MinCostFlowResult result = min_cost_flow_network_simplex(net, 2);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.cost, 2);
  EXPECT_EQ(net.arc(0).flow, 0);
}

TEST(NetworkSimplex, DegenerateLatticeTerminates) {
  // A grid of zero-cost unit arcs is maximally degenerate; Cunningham's
  // rule must still terminate and find the max flow.
  util::Rng rng(55);
  FlowNetwork net = rsin::test::random_layered_network(
      rng, /*layers=*/4, /*width=*/5, /*density=*/0.8, /*max_cap=*/1,
      /*max_cost=*/0);
  const MinCostFlowResult result = min_cost_flow_network_simplex(net, 100);
  EXPECT_FALSE(validate_flow(net, result.value).has_value());
  EXPECT_EQ(result.cost, 0);
}

TEST(NetworkSimplex, DisconnectedSinkGivesZero) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  net.add_node("island");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  const MinCostFlowResult result = min_cost_flow_network_simplex(net, 5);
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.value, 0);
  EXPECT_EQ(result.cost, 0);
}

}  // namespace
}  // namespace rsin::flow
