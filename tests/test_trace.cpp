// Deterministic record/replay: trace round-tripping through the on-disk
// format, bitwise replay of recorded runs (with and without faults), and
// repro-bundle dumps when an invariant trips mid-run.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "core/batching.hpp"
#include "core/scheduler.hpp"
#include "core/zoo.hpp"
#include "obs/obs.hpp"
#include "sim/system_sim.hpp"
#include "sim/trace.hpp"
#include "topo/builders.hpp"

namespace rsin {
namespace {

/// Temp file path unique to the current test; removed on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(std::string(::testing::TempDir()) + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

sim::SystemConfig short_config() {
  sim::SystemConfig config;
  config.arrival_rate = 0.8;
  config.warmup_time = 10.0;
  config.measure_time = 120.0;
  config.seed = 11;
  return config;
}

void expect_identical(const sim::SystemMetrics& a,
                      const sim::SystemMetrics& b) {
  EXPECT_EQ(a.tasks_arrived, b.tasks_arrived);
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.scheduling_cycles, b.scheduling_cycles);
  EXPECT_EQ(a.deferred_cycles, b.deferred_cycles);
  EXPECT_EQ(a.tasks_dropped, b.tasks_dropped);
  EXPECT_EQ(a.tasks_shed, b.tasks_shed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.circuits_torn_down, b.circuits_torn_down);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.repairs, b.repairs);
  // Bitwise equality: the replay executes the identical arithmetic
  // sequence, so even accumulated floating-point results match exactly.
  EXPECT_EQ(a.resource_utilization, b.resource_utilization);
  EXPECT_EQ(a.mean_response_time, b.mean_response_time);
  EXPECT_EQ(a.mean_wait_time, b.mean_wait_time);
  EXPECT_EQ(a.mean_queue_length, b.mean_queue_length);
  EXPECT_EQ(a.blocking_probability, b.blocking_probability);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.degraded_cycle_fraction, b.degraded_cycle_fraction);
  EXPECT_EQ(a.mean_wait_by_priority, b.mean_wait_by_priority);
  EXPECT_EQ(a.p99_response_time, b.p99_response_time);
  EXPECT_EQ(a.requests_granted, b.requests_granted);
  EXPECT_EQ(a.grant_opportunities, b.grant_opportunities);
  EXPECT_EQ(a.level_path, b.level_path);
}

TEST(Trace, SaveLoadRoundTripsExactly) {
  const topo::Network net = topo::make_named("omega", 8);
  core::MaxFlowScheduler scheduler;
  sim::SystemConfig config = short_config();
  config.measure_time = 40.0;
  sim::TraceRecorder recorder;
  sim::simulate_system(net, scheduler, config, recorder);
  const sim::Trace& original = recorder.trace();
  ASSERT_FALSE(original.arrivals.empty());
  ASSERT_FALSE(original.cycles.empty());

  std::stringstream stream;
  original.save(stream);
  const sim::Trace reloaded = sim::Trace::load(stream);

  EXPECT_EQ(reloaded.shape_hash, original.shape_hash);
  EXPECT_EQ(reloaded.config.seed, original.config.seed);
  EXPECT_EQ(reloaded.config.arrival_rate, original.config.arrival_rate);
  ASSERT_EQ(reloaded.arrivals.size(), original.arrivals.size());
  for (std::size_t i = 0; i < original.arrivals.size(); ++i) {
    EXPECT_EQ(reloaded.arrivals[i].time, original.arrivals[i].time);
    EXPECT_EQ(reloaded.arrivals[i].processor, original.arrivals[i].processor);
  }
  ASSERT_EQ(reloaded.cycles.size(), original.cycles.size());
  for (std::size_t i = 0; i < original.cycles.size(); ++i) {
    EXPECT_EQ(reloaded.cycles[i].time, original.cycles[i].time);
    EXPECT_EQ(reloaded.cycles[i].outcome, original.cycles[i].outcome);
    ASSERT_EQ(reloaded.cycles[i].assignments.size(),
              original.cycles[i].assignments.size());
    for (std::size_t j = 0; j < original.cycles[i].assignments.size(); ++j) {
      EXPECT_EQ(reloaded.cycles[i].assignments[j].service_time,
                original.cycles[i].assignments[j].service_time);
      EXPECT_EQ(reloaded.cycles[i].assignments[j].circuit.links,
                original.cycles[i].assignments[j].circuit.links);
    }
  }
  EXPECT_FALSE(reloaded.crashed);
}

TEST(Trace, LoadRejectsCorruptInput) {
  std::stringstream bad_magic("NOTATRACE 1\nEND\n");
  EXPECT_THROW(sim::Trace::load(bad_magic), std::invalid_argument);
  std::stringstream bad_version("RSINTRACE 99\nEND\n");
  EXPECT_THROW(sim::Trace::load(bad_version), std::invalid_argument);
  std::stringstream truncated("RSINTRACE 1\ncfg seed 1\n");
  EXPECT_THROW(sim::Trace::load(truncated), std::invalid_argument);
  std::stringstream unknown("RSINTRACE 1\nZZZ what\nEND\n");
  EXPECT_THROW(sim::Trace::load(unknown), std::invalid_argument);
  std::stringstream stray_assignment("RSINTRACE 1\nG 0 0 1.5 0\nEND\n");
  EXPECT_THROW(sim::Trace::load(stray_assignment), std::invalid_argument);
}

TEST(Trace, ReplayReproducesMetricsBitwise) {
  const topo::Network net = topo::make_named("omega", 8);
  core::MaxFlowScheduler scheduler;
  const sim::SystemConfig config = short_config();
  sim::TraceRecorder recorder;
  const sim::SystemMetrics live =
      sim::simulate_system(net, scheduler, config, recorder);

  const sim::SystemMetrics replayed =
      sim::replay_system(net, recorder.trace());
  expect_identical(live, replayed);
}

TEST(Trace, ReplayReproducesMetricsUnderFaultsAndOverload) {
  const topo::Network net = topo::make_named("benes", 8);
  core::WarmMaxFlowScheduler scheduler(/*verify=*/true);
  sim::SystemConfig config = short_config();
  config.faults.link_mttf = 25.0;
  config.faults.link_mttr = 2.0;
  config.drop_timeout = 30.0;
  config.max_queue = 6;
  config.shed_policy = sim::ShedPolicy::kOldestFirst;
  config.burst_multiplier = 3.0;
  config.burst_start = 40.0;
  config.burst_duration = 30.0;
  config.overload_on = 2.0;
  config.overload_dwell_cycles = 10;
  config.validate_invariants = true;
  sim::TraceRecorder recorder;
  const sim::SystemMetrics live =
      sim::simulate_system(net, scheduler, config, recorder);
  EXPECT_GT(live.faults_injected, 0);

  // Round-trip through the on-disk format before replaying: the serialized
  // doubles must survive exactly for the replay to stay bitwise.
  std::stringstream stream;
  recorder.trace().save(stream);
  const sim::Trace reloaded = sim::Trace::load(stream);
  const sim::SystemMetrics replayed = sim::replay_system(net, reloaded);
  expect_identical(live, replayed);
  EXPECT_EQ(live.overload_fraction, replayed.overload_fraction);
  EXPECT_EQ(live.degradation_transitions, replayed.degradation_transitions);
  EXPECT_EQ(live.final_level, replayed.final_level);
}

TEST(Trace, ReplayReproducesBatchedRunBitwise) {
  // Batched DES runs record batch boundaries as ordinary cycles: deferred
  // cycles carry outcome kDeferred with zero assignments, drains carry the
  // inner outcome with the whole window's assignments. Replay consumes them
  // scheduler-free and must skip the same accounting the live run skipped —
  // any divergence shows up as a metrics mismatch here.
  const topo::Network net = topo::make_named("omega", 8);
  core::BatchingScheduler scheduler(
      std::make_unique<core::CircuitBreakerScheduler>(core::BreakerConfig{},
                                                      /*verify=*/true),
      {/*window=*/4, /*deadline_cycles=*/3});
  const sim::SystemConfig config = short_config();
  sim::TraceRecorder recorder;
  const sim::SystemMetrics live =
      sim::simulate_system(net, scheduler, config, recorder);
  ASSERT_GT(live.deferred_cycles, 0);

  // Round-trip through the on-disk format: kDeferred must serialize too.
  std::stringstream stream;
  recorder.trace().save(stream);
  const sim::Trace reloaded = sim::Trace::load(stream);
  const sim::SystemMetrics replayed = sim::replay_system(net, reloaded);
  expect_identical(live, replayed);
}

TEST(Trace, ReplayBitwiseForEveryZooScheduler) {
  // Record once under each zoo scheduler, replay the trace scheduler-free,
  // and every metric must come back bitwise — with observability both off
  // and on (obs is observation-only; attaching a registry to the replay
  // must not perturb a single double).
  const topo::Network net = topo::make_named("omega", 8);
  for (const char* name : {"randomized-match", "threshold", "greedy-local"}) {
    const auto scheduler = core::make_named_scheduler(name);
    sim::SystemConfig config = short_config();
    config.max_queue = 32;  // zoo disciplines leave more work queued
    sim::TraceRecorder recorder;
    const sim::SystemMetrics live =
        sim::simulate_system(net, *scheduler, config, recorder);
    EXPECT_GT(live.tasks_completed, 0) << name;

    // Round-trip through the on-disk format, then replay without obs...
    std::stringstream stream;
    recorder.trace().save(stream);
    const sim::Trace reloaded = sim::Trace::load(stream);
    const sim::SystemMetrics replayed = sim::replay_system(net, reloaded);
    expect_identical(live, replayed);

    // ...and again with a live registry attached: identical metrics, and
    // the instruments actually saw the run.
    obs::Registry registry;
    const sim::SystemMetrics observed =
        sim::replay_system(net, reloaded, obs::Handle{&registry, nullptr});
    expect_identical(live, observed);
    EXPECT_FALSE(registry.snapshot().counters.empty()) << name;
  }
}

TEST(Trace, SameSeedSameMetricsAcrossRepeatedRuns) {
  const topo::Network net = topo::make_named("omega", 8);
  const sim::SystemConfig config = short_config();
  core::MaxFlowScheduler first_scheduler;
  core::MaxFlowScheduler second_scheduler;
  const sim::SystemMetrics first =
      sim::simulate_system(net, first_scheduler, config);
  const sim::SystemMetrics second =
      sim::simulate_system(net, second_scheduler, config);
  expect_identical(first, second);
}

TEST(Trace, ReplayRejectsWrongTopology) {
  const topo::Network net = topo::make_named("omega", 8);
  core::MaxFlowScheduler scheduler;
  sim::SystemConfig config = short_config();
  config.measure_time = 20.0;
  sim::TraceRecorder recorder;
  sim::simulate_system(net, scheduler, config, recorder);

  const topo::Network other = topo::make_named("benes", 8);
  EXPECT_THROW(sim::replay_system(other, recorder.trace()),
               std::invalid_argument);
}

/// A scheduler that behaves until time-triggered, then grants a circuit for
/// a processor with no pending request — an unrealizable schedule that the
/// runtime's verify/invariant layer must catch.
class SabotagedScheduler final : public core::Scheduler {
 public:
  explicit SabotagedScheduler(std::int32_t healthy_cycles)
      : healthy_cycles_(healthy_cycles) {}
  [[nodiscard]] std::string name() const override { return "sabotaged"; }
  core::ScheduleResult schedule(const core::Problem& problem) override {
    core::ScheduleResult result = honest_.schedule(problem);
    if (++cycles_ > healthy_cycles_ && !result.assignments.empty()) {
      // Duplicate the first assignment: two grants for one request is
      // never realizable.
      result.assignments.push_back(result.assignments.front());
    }
    return result;
  }

 private:
  core::GreedyScheduler honest_;
  std::int32_t healthy_cycles_;
  std::int32_t cycles_ = 0;
};

TEST(Trace, InvariantViolationDumpsReplayableReproBundle) {
  const topo::Network net = topo::make_named("omega", 8);
  TempFile bundle("rsin_crash_trace.txt");
  SabotagedScheduler scheduler(/*healthy_cycles=*/200);
  sim::SystemConfig config = short_config();
  config.trace_on_violation = bundle.path;

  EXPECT_THROW(sim::simulate_system(net, scheduler, config),
               std::logic_error);

  // The repro bundle exists, is marked crashed, and replays its prefix
  // without throwing (the recorded cycles are all pre-sabotage).
  const sim::Trace trace = sim::Trace::load_file(bundle.path);
  EXPECT_TRUE(trace.crashed);
  EXPECT_GT(trace.crash_time, 0.0);
  EXPECT_FALSE(trace.crash_reason.empty());
  ASSERT_FALSE(trace.cycles.empty());
  const sim::SystemMetrics prefix = sim::replay_system(net, trace);
  EXPECT_GT(prefix.tasks_arrived, 0);
}

TEST(Trace, RecorderCrashDiscardsHalfRecordedCycle) {
  sim::TraceRecorder recorder;
  recorder.begin(sim::SystemConfig{}, 42);
  recorder.begin_cycle(1.0, core::ScheduleOutcome::kOptimal);
  recorder.assignment(topo::Circuit{0, 0, {0}}, 0.5);
  recorder.crash(1.0, "boom\nmultiline");
  const sim::Trace& trace = recorder.trace();
  EXPECT_TRUE(trace.cycles.empty());
  EXPECT_TRUE(trace.crashed);
  EXPECT_EQ(trace.crash_reason.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace rsin
