// Circuit breaker around the warm-start scheduling hot path: trip on
// consecutive failures, cold-solver service while open, half-open probing,
// and full recovery — plus its integration with the DES runtime.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "core/problem.hpp"
#include "core/scheduler.hpp"
#include "sim/system_sim.hpp"
#include "topo/builders.hpp"

namespace rsin {
namespace {

/// Delegates to an optimal scheduler but throws during [fail_from,
/// fail_until) (cycle indices, 0-based).
class FlakyScheduler final : public core::Scheduler {
 public:
  FlakyScheduler(std::int32_t fail_from, std::int32_t fail_until)
      : fail_from_(fail_from), fail_until_(fail_until) {}
  [[nodiscard]] std::string name() const override { return "flaky"; }
  core::ScheduleResult schedule(const core::Problem& problem) override {
    const std::int32_t cycle = cycles_++;
    if (cycle >= fail_from_ && cycle < fail_until_) {
      throw std::runtime_error("flaky primary failed");
    }
    return honest_.schedule(problem);
  }
  [[nodiscard]] std::int32_t cycles() const { return cycles_; }

 private:
  core::MaxFlowScheduler honest_;
  std::int32_t fail_from_;
  std::int32_t fail_until_;
  std::int32_t cycles_ = 0;
};

core::Problem make_problem(const topo::Network& net) {
  core::Problem problem;
  problem.network = &net;
  for (topo::ProcessorId p = 0; p < net.processor_count(); ++p) {
    problem.requests.push_back(core::Request{p, 0, 0});
  }
  for (topo::ResourceId r = 0; r < net.resource_count(); ++r) {
    problem.free_resources.push_back(core::FreeResource{r, 0, 0});
  }
  return problem;
}

TEST(CircuitBreaker, HealthyPrimaryStaysClosed) {
  const topo::Network net = topo::make_named("omega", 8);
  const core::Problem problem = make_problem(net);
  core::CircuitBreakerScheduler breaker;
  for (int i = 0; i < 10; ++i) {
    const core::ScheduleResult result = breaker.schedule(problem);
    EXPECT_EQ(result.allocated(), static_cast<std::size_t>(8));
    EXPECT_EQ(breaker.state(), core::BreakerState::kClosed);
    EXPECT_EQ(breaker.last_report().outcome,
              core::ScheduleOutcome::kOptimal);
  }
  EXPECT_EQ(breaker.trips(), 0);
  EXPECT_EQ(breaker.cold_cycles(), 0);
}

TEST(CircuitBreaker, ConsecutiveFailuresTripAndColdPathServes) {
  const topo::Network net = topo::make_named("omega", 8);
  const core::Problem problem = make_problem(net);
  core::BreakerConfig config;
  config.failure_threshold = 3;
  config.cooldown_cycles = 4;
  core::CircuitBreakerScheduler breaker(
      config, std::make_unique<FlakyScheduler>(0, 1000));

  // Every failing cycle is still served (by the cold solver) and never
  // throws out of schedule().
  for (int i = 0; i < 3; ++i) {
    const core::ScheduleResult result = breaker.schedule(problem);
    EXPECT_EQ(result.allocated(), static_cast<std::size_t>(8));
    EXPECT_EQ(breaker.last_report().outcome,
              core::ScheduleOutcome::kColdFallback);
  }
  EXPECT_EQ(breaker.state(), core::BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_EQ(breaker.last_report().consecutive_failures, 3);
  EXPECT_EQ(breaker.last_report().detail, "flaky primary failed");
}

TEST(CircuitBreaker, SuccessBeforeThresholdResetsTheCounter) {
  const topo::Network net = topo::make_named("omega", 8);
  const core::Problem problem = make_problem(net);
  core::BreakerConfig config;
  config.failure_threshold = 3;
  // Fails cycles 0-1 (two consecutive), recovers, never reaches three.
  core::CircuitBreakerScheduler breaker(
      config, std::make_unique<FlakyScheduler>(0, 2));
  for (int i = 0; i < 10; ++i) breaker.schedule(problem);
  EXPECT_EQ(breaker.trips(), 0);
  EXPECT_EQ(breaker.state(), core::BreakerState::kClosed);
  EXPECT_EQ(breaker.last_report().consecutive_failures, 0);
}

TEST(CircuitBreaker, HalfOpenProbeRecoversWhenPrimaryHeals) {
  const topo::Network net = topo::make_named("omega", 8);
  const core::Problem problem = make_problem(net);
  core::BreakerConfig config;
  config.failure_threshold = 2;
  config.cooldown_cycles = 3;
  // Fails its first 2 calls, healthy afterwards. Note the breaker stops
  // calling the primary while open, so primary cycle 2 is the half-open
  // probe.
  core::CircuitBreakerScheduler breaker(
      config, std::make_unique<FlakyScheduler>(0, 2));

  breaker.schedule(problem);
  breaker.schedule(problem);  // second failure trips
  EXPECT_EQ(breaker.state(), core::BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1);

  // Cooldown: served cold without touching the primary.
  for (int i = 0; i < config.cooldown_cycles - 1; ++i) {
    breaker.schedule(problem);
    EXPECT_EQ(breaker.state(), core::BreakerState::kOpen);
    EXPECT_EQ(breaker.last_report().outcome,
              core::ScheduleOutcome::kColdFallback);
  }
  breaker.schedule(problem);
  EXPECT_EQ(breaker.state(), core::BreakerState::kHalfOpen);

  // Probe succeeds (the flaky window is over): breaker closes again.
  const core::ScheduleResult result = breaker.schedule(problem);
  EXPECT_EQ(result.allocated(), static_cast<std::size_t>(8));
  EXPECT_EQ(breaker.state(), core::BreakerState::kClosed);
  EXPECT_EQ(breaker.last_report().outcome, core::ScheduleOutcome::kOptimal);
  EXPECT_EQ(breaker.last_report().consecutive_failures, 0);

  // And stays closed on subsequent healthy cycles.
  breaker.schedule(problem);
  EXPECT_EQ(breaker.state(), core::BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreaker, FailedProbeReopensImmediately) {
  const topo::Network net = topo::make_named("omega", 8);
  const core::Problem problem = make_problem(net);
  core::BreakerConfig config;
  config.failure_threshold = 2;
  config.cooldown_cycles = 2;
  core::CircuitBreakerScheduler breaker(
      config, std::make_unique<FlakyScheduler>(0, 1000));

  breaker.schedule(problem);
  breaker.schedule(problem);  // trips
  EXPECT_EQ(breaker.state(), core::BreakerState::kOpen);
  breaker.schedule(problem);
  breaker.schedule(problem);  // cooldown elapsed -> half-open
  EXPECT_EQ(breaker.state(), core::BreakerState::kHalfOpen);
  breaker.schedule(problem);  // probe fails -> immediately open again
  EXPECT_EQ(breaker.state(), core::BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
  EXPECT_EQ(breaker.last_report().outcome,
            core::ScheduleOutcome::kColdFallback);
}

TEST(CircuitBreaker, OutcomeAndStateNamesAreStable) {
  EXPECT_STREQ(core::to_string(core::ScheduleOutcome::kColdFallback),
               "cold-fallback");
  EXPECT_STREQ(core::to_string(core::BreakerState::kClosed), "closed");
  EXPECT_STREQ(core::to_string(core::BreakerState::kOpen), "open");
  EXPECT_STREQ(core::to_string(core::BreakerState::kHalfOpen), "half-open");
}

TEST(CircuitBreaker, RejectsBadConfig) {
  core::BreakerConfig bad;
  bad.failure_threshold = 0;
  EXPECT_THROW(core::CircuitBreakerScheduler breaker(bad),
               std::invalid_argument);
  core::BreakerConfig bad_cooldown;
  bad_cooldown.cooldown_cycles = 0;
  EXPECT_THROW(core::CircuitBreakerScheduler breaker(bad_cooldown),
               std::invalid_argument);
}

TEST(CircuitBreaker, DrivesTheSystemSimulationUnderFaults) {
  // The default breaker (warm primary, verify on) survives a fault-storm
  // DES run: the differential check guards every warm cycle and the cold
  // path covers any trip, so the run completes with healthy metrics.
  const topo::Network net = topo::make_named("benes", 8);
  core::CircuitBreakerScheduler breaker({}, /*verify=*/true);
  sim::SystemConfig config;
  config.arrival_rate = 0.8;
  config.warmup_time = 20.0;
  config.measure_time = 200.0;
  config.faults.link_mttf = 15.0;
  config.faults.link_mttr = 2.0;
  config.drop_timeout = 50.0;
  config.seed = 7;
  config.validate_invariants = true;
  const sim::SystemMetrics metrics =
      sim::simulate_system(net, breaker, config);
  EXPECT_GT(metrics.tasks_completed, 0);
  EXPECT_GT(metrics.faults_injected, 0);
  // degraded_cycle_fraction counts the breaker's cold-fallback cycles too.
  EXPECT_GE(metrics.degraded_cycle_fraction, 0.0);
}

}  // namespace
}  // namespace rsin
