#include "sim/des.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rsin::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, [&] { order.push_back(3); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(2.0, [&] { order.push_back(2); });
  while (queue.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 3.0);
}

TEST(EventQueue, StableTieBreakAtSameTime) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(1.0, [&] { order.push_back(0); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(1.0, [&] { order.push_back(2); });
  while (queue.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue queue;
  double fired_at = -1.0;
  queue.schedule(2.0, [&] {
    queue.schedule_in(0.5, [&] { fired_at = queue.now(); });
  });
  while (queue.step()) {
  }
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(EventQueue, RejectsPastEvents) {
  EventQueue queue;
  queue.schedule(5.0, [] {});
  queue.step();
  EXPECT_THROW(queue.schedule(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue queue;
  int fired = 0;
  queue.schedule(1.0, [&] { ++fired; });
  queue.schedule(2.0, [&] { ++fired; });
  queue.schedule(10.0, [&] { ++fired; });
  queue.run_until(5.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(queue.now(), 5.0);
  queue.run_until(20.0);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, CascadingEventsWithinHorizon) {
  EventQueue queue;
  int count = 0;
  std::function<void()> reschedule = [&] {
    ++count;
    if (count < 5) queue.schedule_in(1.0, reschedule);
  };
  queue.schedule(0.0, reschedule);
  queue.run_until(100.0);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(queue.executed(), 5);
}

TEST(EventQueue, EmptyQueueStepReturnsFalse) {
  EventQueue queue;
  EXPECT_FALSE(queue.step());
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace rsin::sim
