#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace rsin::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(Simplex, SimpleTwoVariableMaximization) {
  // max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6  ->  x=4, y=0, obj 12.
  LinearProgram program;
  const int x = program.add_variable(3.0, "x");
  const int y = program.add_variable(2.0, "y");
  program.add_constraint({{{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 4.0});
  program.add_constraint({{{x, 1.0}, {y, 3.0}}, Relation::kLessEqual, 6.0});
  const Solution solution = solve(program);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 12.0, kTol);
  EXPECT_NEAR(solution.values[0], 4.0, kTol);
  EXPECT_NEAR(solution.values[1], 0.0, kTol);
}

TEST(Simplex, InteriorOptimum) {
  // max x + y  s.t. 2x + y <= 4, x + 2y <= 4  ->  x=y=4/3, obj 8/3.
  LinearProgram program;
  const int x = program.add_variable(1.0);
  const int y = program.add_variable(1.0);
  program.add_constraint({{{x, 2.0}, {y, 1.0}}, Relation::kLessEqual, 4.0});
  program.add_constraint({{{x, 1.0}, {y, 2.0}}, Relation::kLessEqual, 4.0});
  const Solution solution = solve(program);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 8.0 / 3.0, kTol);
  EXPECT_NEAR(solution.values[0], 4.0 / 3.0, kTol);
  EXPECT_NEAR(solution.values[1], 4.0 / 3.0, kTol);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram program;
  const int x = program.add_variable(1.0);
  const int y = program.add_variable(0.0);
  program.add_constraint({{{y, 1.0}}, Relation::kLessEqual, 1.0});
  (void)x;  // x unconstrained above
  const Solution solution = solve(program);
  EXPECT_EQ(solution.status, SolveStatus::kUnbounded);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProgram program;
  const int x = program.add_variable(1.0);
  program.add_constraint({{{x, 1.0}}, Relation::kLessEqual, 1.0});
  program.add_constraint({{{x, 1.0}}, Relation::kGreaterEqual, 3.0});
  const Solution solution = solve(program);
  EXPECT_EQ(solution.status, SolveStatus::kInfeasible);
}

TEST(Simplex, EqualityConstraints) {
  // max x + 2y  s.t. x + y == 3, x - y == 1  ->  x=2, y=1, obj 4.
  LinearProgram program;
  const int x = program.add_variable(1.0);
  const int y = program.add_variable(2.0);
  program.add_constraint({{{x, 1.0}, {y, 1.0}}, Relation::kEqual, 3.0});
  program.add_constraint({{{x, 1.0}, {y, -1.0}}, Relation::kEqual, 1.0});
  const Solution solution = solve(program);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 4.0, kTol);
  EXPECT_NEAR(solution.values[0], 2.0, kTol);
  EXPECT_NEAR(solution.values[1], 1.0, kTol);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x >= 2 written as -x <= -2; max -x  ->  x=2.
  LinearProgram program;
  const int x = program.add_variable(-1.0);
  program.add_constraint({{{x, -1.0}}, Relation::kLessEqual, -2.0});
  const Solution solution = solve(program);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.values[0], 2.0, kTol);
  EXPECT_NEAR(solution.objective, -2.0, kTol);
}

TEST(Simplex, GreaterEqualWithSurplus) {
  // min x+y (max -x-y) s.t. x + 2y >= 4, 3x + y >= 6 -> x=1.6, y=1.2.
  LinearProgram program;
  const int x = program.add_variable(-1.0);
  const int y = program.add_variable(-1.0);
  program.add_constraint({{{x, 1.0}, {y, 2.0}}, Relation::kGreaterEqual, 4.0});
  program.add_constraint({{{x, 3.0}, {y, 1.0}}, Relation::kGreaterEqual, 6.0});
  const Solution solution = solve(program);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.values[0], 1.6, kTol);
  EXPECT_NEAR(solution.values[1], 1.2, kTol);
}

TEST(Simplex, DuplicateTermsAreSummed) {
  // max x s.t. (0.5 + 0.5) x <= 3.
  LinearProgram program;
  const int x = program.add_variable(1.0);
  program.add_constraint({{{x, 0.5}, {x, 0.5}}, Relation::kLessEqual, 3.0});
  const Solution solution = solve(program);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.values[0], 3.0, kTol);
}

TEST(Simplex, RejectsUnknownVariable) {
  LinearProgram program;
  program.add_variable(1.0);
  EXPECT_THROW(
      program.add_constraint({{{5, 1.0}}, Relation::kLessEqual, 1.0}),
      std::invalid_argument);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic cycling-prone instance (Beale); Bland fallback must terminate.
  LinearProgram program;
  const int x1 = program.add_variable(0.75);
  const int x2 = program.add_variable(-150.0);
  const int x3 = program.add_variable(0.02);
  const int x4 = program.add_variable(-6.0);
  program.add_constraint(
      {{{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
       Relation::kLessEqual,
       0.0});
  program.add_constraint(
      {{{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
       Relation::kLessEqual,
       0.0});
  program.add_constraint({{{x3, 1.0}}, Relation::kLessEqual, 1.0});
  const Solution solution = solve(program);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 0.05, kTol);
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y == 2 listed twice; still solvable.
  LinearProgram program;
  const int x = program.add_variable(1.0);
  const int y = program.add_variable(0.5);
  program.add_constraint({{{x, 1.0}, {y, 1.0}}, Relation::kEqual, 2.0});
  program.add_constraint({{{x, 1.0}, {y, 1.0}}, Relation::kEqual, 2.0});
  const Solution solution = solve(program);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 2.0, kTol);
  EXPECT_NEAR(solution.values[0], 2.0, kTol);
}

TEST(Simplex, ZeroConstraintProblem) {
  // No constraints, non-positive objective: optimum at the origin.
  LinearProgram program;
  program.add_variable(-1.0);
  const Solution solution = solve(program);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 0.0, kTol);
}

class SimplexDuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexDuality, StrongDualityOnRandomPrograms) {
  // Generate a random bounded-feasible primal max c'x s.t. Ax <= b, x >= 0,
  // build its dual min b'y s.t. A'y >= c, y >= 0, and check both optima
  // agree — an algorithm-level self-test no single solve could provide.
  util::Rng rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    const int vars = static_cast<int>(rng.uniform_int(2, 6));
    const int rows = static_cast<int>(rng.uniform_int(2, 6));
    std::vector<std::vector<double>> a(static_cast<std::size_t>(rows),
                                       std::vector<double>(
                                           static_cast<std::size_t>(vars)));
    std::vector<double> b(static_cast<std::size_t>(rows));
    std::vector<double> c(static_cast<std::size_t>(vars));
    for (auto& row : a) {
      for (double& x : row) x = static_cast<double>(rng.uniform_int(0, 4));
    }
    for (double& x : b) x = static_cast<double>(rng.uniform_int(1, 10));
    for (double& x : c) x = static_cast<double>(rng.uniform_int(0, 5));

    LinearProgram primal;
    for (int j = 0; j < vars; ++j) {
      primal.add_variable(c[static_cast<std::size_t>(j)]);
    }
    for (int i = 0; i < rows; ++i) {
      Constraint row;
      for (int j = 0; j < vars; ++j) {
        row.terms.emplace_back(j, a[static_cast<std::size_t>(i)]
                                   [static_cast<std::size_t>(j)]);
      }
      // Guarantee boundedness: every variable appears with coefficient >= 1
      // in this extra box row.
      row.relation = Relation::kLessEqual;
      row.rhs = b[static_cast<std::size_t>(i)];
      primal.add_constraint(std::move(row));
    }
    Constraint box;
    for (int j = 0; j < vars; ++j) box.terms.emplace_back(j, 1.0);
    box.relation = Relation::kLessEqual;
    box.rhs = 50.0;
    primal.add_constraint(box);

    // Dual: min b'y (+50*y_box)  s.t.  A'y >= c, y >= 0  ==
    //       max -b'y             s.t. -A'y <= -c.
    LinearProgram dual;
    for (int i = 0; i < rows; ++i) {
      dual.add_variable(-b[static_cast<std::size_t>(i)]);
    }
    const int y_box = dual.add_variable(-50.0);
    for (int j = 0; j < vars; ++j) {
      Constraint col;
      for (int i = 0; i < rows; ++i) {
        col.terms.emplace_back(i, a[static_cast<std::size_t>(i)]
                                    [static_cast<std::size_t>(j)]);
      }
      col.terms.emplace_back(y_box, 1.0);
      col.relation = Relation::kGreaterEqual;
      col.rhs = c[static_cast<std::size_t>(j)];
      dual.add_constraint(std::move(col));
    }

    const Solution primal_solution = solve(primal);
    const Solution dual_solution = solve(dual);
    ASSERT_EQ(primal_solution.status, SolveStatus::kOptimal);
    ASSERT_EQ(dual_solution.status, SolveStatus::kOptimal);
    EXPECT_NEAR(primal_solution.objective, -dual_solution.objective, 1e-6)
        << "strong duality, seed " << GetParam() << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexDuality,
                         ::testing::Values(201, 202, 203, 204, 205, 206));

TEST(Simplex, VariableNamesStored) {
  LinearProgram program;
  const int x = program.add_variable(1.0, "flow_a");
  EXPECT_EQ(program.variable_name(x), "flow_a");
  const int y = program.add_variable(1.0);
  EXPECT_EQ(program.variable_name(y), "x1");
}

}  // namespace
}  // namespace rsin::lp
