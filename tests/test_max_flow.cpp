#include "flow/max_flow.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "flow/min_cut.hpp"
#include "flow/push_relabel.hpp"
#include "flow/validate.hpp"
#include "test_helpers.hpp"

namespace rsin::flow {
namespace {

/// The flow network of Fig. 3 of the paper: unit capacities, nodes
/// s, a, b, c, d, t; max flow 2, reachable only by using the augmenting
/// path s-c-d-a-b-t that cancels flow on (a, d).
FlowNetwork fig3_network() {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const NodeId c = net.add_node("c");
  const NodeId d = net.add_node("d");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  net.add_arc(s, a, 1);
  net.add_arc(s, c, 1);
  net.add_arc(a, b, 1);
  net.add_arc(a, d, 1);
  net.add_arc(c, d, 1);
  net.add_arc(b, t, 1);
  net.add_arc(d, t, 1);
  return net;
}

TEST(MaxFlow, Fig3ValueIsTwoForAllAlgorithms) {
  for (const auto algorithm :
       {MaxFlowAlgorithm::kFordFulkerson, MaxFlowAlgorithm::kEdmondsKarp,
        MaxFlowAlgorithm::kDinic}) {
    FlowNetwork net = fig3_network();
    const MaxFlowResult result = max_flow(net, algorithm);
    EXPECT_EQ(result.value, 2);
    EXPECT_EQ(net.flow_value(), 2);
    EXPECT_FALSE(validate_flow(net, 2).has_value());
  }
}

TEST(MaxFlow, Fig3AugmentationCancelsInitialFlow) {
  // Pre-assign the paper's initial flow along s-a-d-t, then let the solver
  // finish: it must discover the augmenting path through d-a (cancelling
  // the a->d unit) and reach value 2.
  FlowNetwork net = fig3_network();
  net.set_flow(0, 1);  // s->a
  net.set_flow(3, 1);  // a->d
  net.set_flow(6, 1);  // d->t
  const MaxFlowResult result = max_flow_dinic(net);
  EXPECT_EQ(result.value, 1);  // one *additional* unit
  EXPECT_EQ(net.flow_value(), 2);
  EXPECT_EQ(net.arc(3).flow, 0) << "a->d flow must be cancelled";
  EXPECT_FALSE(validate_flow(net, 2).has_value());
}

TEST(MaxFlow, EmptyNetworkBetweenDisconnectedNodes) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  for (const auto algorithm :
       {MaxFlowAlgorithm::kFordFulkerson, MaxFlowAlgorithm::kEdmondsKarp,
        MaxFlowAlgorithm::kDinic}) {
    FlowNetwork copy = net;
    EXPECT_EQ(max_flow(copy, algorithm).value, 0);
  }
}

TEST(MaxFlow, RequiresSourceAndSink) {
  FlowNetwork net;
  net.add_node("only");
  EXPECT_THROW(max_flow_dinic(net), std::invalid_argument);
}

TEST(MaxFlow, SingleArcSaturates) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId t = net.add_node("t");
  net.add_arc(s, t, 7);
  net.set_source(s);
  net.set_sink(t);
  EXPECT_EQ(max_flow_edmonds_karp(net).value, 7);
}

TEST(MaxFlow, ParallelArcsAddUp) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId t = net.add_node("t");
  net.add_arc(s, t, 2);
  net.add_arc(s, t, 3);
  net.set_source(s);
  net.set_sink(t);
  EXPECT_EQ(max_flow_dinic(net).value, 5);
}

TEST(MaxFlow, BottleneckLimitsValue) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId a = net.add_node("a");
  const NodeId t = net.add_node("t");
  net.add_arc(s, a, 10);
  net.add_arc(a, t, 3);
  net.set_source(s);
  net.set_sink(t);
  EXPECT_EQ(max_flow_ford_fulkerson(net).value, 3);
}

TEST(MaxFlow, ClassicCLRSExample) {
  // The standard 6-node example with max flow 23.
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId v1 = net.add_node("v1");
  const NodeId v2 = net.add_node("v2");
  const NodeId v3 = net.add_node("v3");
  const NodeId v4 = net.add_node("v4");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  net.add_arc(s, v1, 16);
  net.add_arc(s, v2, 13);
  net.add_arc(v1, v3, 12);
  net.add_arc(v2, v1, 4);
  net.add_arc(v2, v4, 14);
  net.add_arc(v3, v2, 9);
  net.add_arc(v3, t, 20);
  net.add_arc(v4, v3, 7);
  net.add_arc(v4, t, 4);
  for (const auto algorithm :
       {MaxFlowAlgorithm::kFordFulkerson, MaxFlowAlgorithm::kEdmondsKarp,
        MaxFlowAlgorithm::kDinic}) {
    FlowNetwork copy = net;
    EXPECT_EQ(max_flow(copy, algorithm).value, 23);
    EXPECT_FALSE(validate_flow(copy, 23).has_value());
  }
}

TEST(MaxFlow, DinicPhasesBoundedByAugmentations) {
  FlowNetwork net = fig3_network();
  const MaxFlowResult result = max_flow_dinic(net);
  EXPECT_GE(result.augmentations, result.phases - 1);
  EXPECT_GE(result.phases, 1);
}

TEST(MaxFlow, DinicTraceRecordsLayeredNetworks) {
  FlowNetwork net = fig3_network();
  DinicTrace trace;
  max_flow_dinic(net, &trace);
  ASSERT_GE(trace.phases.size(), 2u);  // at least one live phase + final dry
  const LayeredNetwork& first = trace.phases.front();
  ASSERT_FALSE(first.layers.empty());
  EXPECT_EQ(first.layers[0].size(), 1u);
  EXPECT_EQ(first.layers[0][0], net.source());
  // The final phase must fail to reach the sink.
  EXPECT_EQ(trace.phases.back().level[static_cast<std::size_t>(net.sink())],
            -1);
}

TEST(MaxFlow, LayeredNetworkLevelsAreBfsDistances) {
  FlowNetwork net = fig3_network();
  ResidualGraph residual(net);
  const LayeredNetwork layered =
      build_layered_network(residual, net.source(), net.sink());
  EXPECT_EQ(layered.level[static_cast<std::size_t>(net.source())], 0);
  // a and c are one hop out; b and d two hops; t three.
  EXPECT_EQ(layered.level[1], 1);  // a
  EXPECT_EQ(layered.level[3], 1);  // c
  EXPECT_EQ(layered.level[2], 2);  // b
  EXPECT_EQ(layered.level[4], 2);  // d
  EXPECT_EQ(layered.level[static_cast<std::size_t>(net.sink())], 3);
  // Useful links descend exactly one level.
  for (const auto e : layered.useful_links) {
    const NodeId u = residual.tail(e);
    const NodeId v = residual.head(e);
    EXPECT_EQ(layered.level[static_cast<std::size_t>(v)],
              layered.level[static_cast<std::size_t>(u)] + 1);
  }
}

TEST(MaxFlow, MinCutMatchesFlowValue) {
  FlowNetwork net = fig3_network();
  const MaxFlowResult result = max_flow_dinic(net);
  const MinCut cut = min_cut_from_flow(net);
  EXPECT_EQ(cut.capacity, result.value);
  for (const ArcId a : cut.cut_arcs) {
    EXPECT_EQ(net.arc(a).flow, net.arc(a).capacity)
        << "cut arcs must be saturated";
  }
}

TEST(MaxFlow, PushRelabelMatchesOnClassicExample) {
  FlowNetwork net = fig3_network();
  const MaxFlowResult result = max_flow_push_relabel(net);
  EXPECT_EQ(result.value, 2);
  EXPECT_FALSE(validate_flow(net, 2).has_value());
}

TEST(MaxFlow, PushRelabelWarmStartAugments) {
  FlowNetwork net = fig3_network();
  net.set_flow(0, 1);  // s->a
  net.set_flow(3, 1);  // a->d
  net.set_flow(6, 1);  // d->t
  const MaxFlowResult result = max_flow_push_relabel(net);
  EXPECT_EQ(result.value, 1) << "one additional unit over the warm start";
  EXPECT_EQ(net.flow_value(), 2);
  EXPECT_FALSE(validate_flow(net, 2).has_value());
}

TEST(MaxFlow, CapacityScalingMatchesOnWideCapacities) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId a = net.add_node("a");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  net.add_arc(s, a, 1'000'000);
  net.add_arc(a, t, 999'999);
  net.add_arc(s, t, 1);
  const MaxFlowResult result = max_flow_capacity_scaling(net);
  EXPECT_EQ(result.value, 1'000'000);
  // Scaling keeps the augmentation count near log(C), not C.
  EXPECT_LT(result.augmentations, 64);
}

// Regression: the DFS augmenting-path search is iterative; a path hundreds
// of thousands of nodes deep must not overflow the call stack (the old
// recursive dfs_augment crashed here).
TEST(MaxFlow, DeepChainDoesNotOverflowTheStack) {
  constexpr int kDepth = 300'000;
  FlowNetwork net;
  NodeId prev = net.add_node("s");
  net.set_source(prev);
  for (int i = 0; i < kDepth; ++i) {
    const NodeId next = net.add_node("n" + std::to_string(i));
    net.add_arc(prev, next, 2);
    prev = next;
  }
  const NodeId t = net.add_node("t");
  net.set_sink(t);
  net.add_arc(prev, t, 2);
  for (const auto algorithm : {MaxFlowAlgorithm::kFordFulkerson,
                               MaxFlowAlgorithm::kCapacityScaling}) {
    FlowNetwork run = net;
    EXPECT_EQ(max_flow(run, algorithm).value, 2);
  }
}

// Regression: initializing capacity scaling's threshold by doubling used to
// overflow (UB) when an arc capacity was within 2x of the Capacity maximum.
TEST(MaxFlow, CapacityScalingNearMaxCapacity) {
  constexpr Capacity kHuge = std::numeric_limits<Capacity>::max() - 1;
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId m = net.add_node("m");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  net.add_arc(s, m, kHuge);
  net.add_arc(m, t, kHuge / 2);
  const MaxFlowResult result = max_flow_capacity_scaling(net);
  EXPECT_EQ(result.value, kHuge / 2);
  EXPECT_LT(result.augmentations, 128);
}

class MaxFlowRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxFlowRandomSweep, AlgorithmsAgreeAndSatisfyDuality) {
  util::Rng rng(GetParam());
  constexpr MaxFlowAlgorithm kAll[] = {
      MaxFlowAlgorithm::kFordFulkerson, MaxFlowAlgorithm::kEdmondsKarp,
      MaxFlowAlgorithm::kDinic, MaxFlowAlgorithm::kCapacityScaling,
      MaxFlowAlgorithm::kPushRelabel};
  for (int round = 0; round < 8; ++round) {
    const int layers = static_cast<int>(rng.uniform_int(1, 4));
    const int width = static_cast<int>(rng.uniform_int(2, 6));
    const auto cap = static_cast<Capacity>(rng.uniform_int(1, 5));
    FlowNetwork base = rsin::test::random_layered_network(
        rng, layers, width, /*density=*/0.55, cap);

    Capacity reference = -1;
    for (const auto algorithm : kAll) {
      FlowNetwork net = base;
      const Capacity value = max_flow(net, algorithm).value;
      if (reference < 0) reference = value;
      EXPECT_EQ(value, reference) << "algorithm disagreement";
      EXPECT_FALSE(validate_flow(net, value).has_value());
      const MinCut cut = min_cut_from_flow(net);
      EXPECT_EQ(cut.capacity, value) << "max-flow/min-cut duality";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxFlowRandomSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace rsin::flow
