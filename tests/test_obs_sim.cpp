// Observability through the simulation stack: live runs populate the
// registry without perturbing results, record/replay stays bitwise with obs
// on or off (the subsystem's acceptance criterion), TraceRecorder strips
// the runtime-only handle, and the pooled experiment publishes per-worker
// batch statistics while remaining bit-identical.
#include <gtest/gtest.h>

#include <memory>

#include "core/batching.hpp"
#include "core/scheduler.hpp"
#include "core/warm_pool.hpp"
#include "obs/obs.hpp"
#include "sim/static_experiment.hpp"
#include "sim/system_sim.hpp"
#include "sim/trace.hpp"
#include "topo/builders.hpp"

namespace rsin {
namespace {

sim::SystemConfig short_config() {
  sim::SystemConfig config;
  config.arrival_rate = 0.8;
  config.warmup_time = 10.0;
  config.measure_time = 120.0;
  config.seed = 11;
  return config;
}

void expect_identical(const sim::SystemMetrics& a,
                      const sim::SystemMetrics& b) {
  EXPECT_EQ(a.tasks_arrived, b.tasks_arrived);
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.scheduling_cycles, b.scheduling_cycles);
  EXPECT_EQ(a.deferred_cycles, b.deferred_cycles);
  EXPECT_EQ(a.tasks_dropped, b.tasks_dropped);
  EXPECT_EQ(a.tasks_shed, b.tasks_shed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.circuits_torn_down, b.circuits_torn_down);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.repairs, b.repairs);
  // Bitwise: instrumentation is observation-only, so even accumulated
  // floating-point results must match exactly.
  EXPECT_EQ(a.resource_utilization, b.resource_utilization);
  EXPECT_EQ(a.mean_response_time, b.mean_response_time);
  EXPECT_EQ(a.mean_wait_time, b.mean_wait_time);
  EXPECT_EQ(a.mean_queue_length, b.mean_queue_length);
  EXPECT_EQ(a.blocking_probability, b.blocking_probability);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.degraded_cycle_fraction, b.degraded_cycle_fraction);
}

std::int64_t counter_value(obs::Registry& registry, std::string_view name) {
  return registry.counter(name).value();
}

TEST(ObsSim, LiveRunIsBitwiseIdenticalWithObsAttached) {
  const topo::Network net = topo::make_named("omega", 8);
  const sim::SystemConfig plain_config = short_config();

  core::MaxFlowScheduler plain_scheduler;
  const sim::SystemMetrics plain =
      sim::simulate_system(net, plain_scheduler, plain_config);

  obs::Registry registry;
  obs::TraceWriter trace;
  sim::SystemConfig obs_config = short_config();
  obs_config.obs = obs::Handle{&registry, &trace};
  core::MaxFlowScheduler obs_scheduler;
  const sim::SystemMetrics observed =
      sim::simulate_system(net, obs_scheduler, obs_config);

  expect_identical(plain, observed);
  EXPECT_GT(trace.size(), 0u);  // solve spans + queue-depth samples
}

TEST(ObsSim, LiveRunCountsCyclesAndSolves) {
  const topo::Network net = topo::make_named("omega", 8);
  obs::Registry registry;
  sim::SystemConfig config = short_config();
  config.obs = obs::Handle{&registry, nullptr};
  core::MaxFlowScheduler scheduler;
  const sim::SystemMetrics metrics =
      sim::simulate_system(net, scheduler, config);

  // Obs counters cover the whole run (warmup included); the measured-window
  // metrics are a lower bound.
  const std::int64_t solved = counter_value(registry, "sim.cycles.solved");
  const std::int64_t deferred = counter_value(registry, "sim.cycles.deferred");
  EXPECT_GE(solved, metrics.scheduling_cycles);
  EXPECT_GT(solved, 0);
  // Exactly one solve-latency observation per live scheduler call.
  EXPECT_EQ(registry.histogram("sim.cycle.solve_us").count(),
            solved + deferred);
  // The scheduler itself was bound through the same handle.
  EXPECT_EQ(counter_value(registry, "flow.solves"), solved);
  EXPECT_GT(counter_value(registry, "flow.bfs_phases"), 0);
}

TEST(ObsSim, RecordedTraceStripsTheRuntimeHandle) {
  const topo::Network net = topo::make_named("omega", 8);
  obs::Registry registry;
  sim::SystemConfig config = short_config();
  config.measure_time = 40.0;
  config.obs = obs::Handle{&registry, nullptr};
  core::MaxFlowScheduler scheduler;
  sim::TraceRecorder recorder;
  sim::simulate_system(net, scheduler, config, recorder);
  // The handle is runtime-only plumbing: a reloaded trace must not carry
  // pointers into a registry that no longer exists.
  EXPECT_EQ(recorder.trace().config.obs.registry, nullptr);
  EXPECT_EQ(recorder.trace().config.obs.trace, nullptr);
}

// The subsystem's acceptance criterion: replaying a recorded trace with obs
// enabled yields SystemMetrics bitwise identical to the obs-off replay.
TEST(ObsSim, ReplayIsBitwiseIdenticalWithObsOnVsOff) {
  const topo::Network net = topo::make_named("benes", 8);
  sim::SystemConfig config = short_config();
  config.faults.link_mttf = 60.0;
  config.faults.link_mttr = 5.0;
  config.drop_timeout = 50.0;
  core::MaxFlowScheduler scheduler;
  sim::TraceRecorder recorder;
  const sim::SystemMetrics live =
      sim::simulate_system(net, scheduler, config, recorder);

  const sim::SystemMetrics plain_replay =
      sim::replay_system(net, recorder.trace());
  obs::Registry registry;
  const sim::SystemMetrics obs_replay = sim::replay_system(
      net, recorder.trace(), obs::Handle{&registry, nullptr});

  expect_identical(live, plain_replay);
  expect_identical(plain_replay, obs_replay);
  // The instrumented replay really did count: every replayed cycle applies
  // recorded assignments, and recorded faults land in the fault counter.
  EXPECT_GT(counter_value(registry, "sim.cycles.solved"), 0);
  EXPECT_GE(counter_value(registry, "sim.faults.injected"),
            live.faults_injected);
}

TEST(ObsSim, BatchingDrainsAreCounted) {
  const topo::Network net = topo::make_named("omega", 8);
  obs::Registry registry;
  sim::SystemConfig config = short_config();
  config.obs = obs::Handle{&registry, nullptr};
  core::BatchingScheduler scheduler(std::make_unique<core::MaxFlowScheduler>(),
                                    core::BatchPolicy{4, 0});
  const sim::SystemMetrics metrics =
      sim::simulate_system(net, scheduler, config);

  EXPECT_GT(metrics.deferred_cycles, 0);
  const std::int64_t deferred = counter_value(registry, "core.batch.deferred");
  const std::int64_t drains = counter_value(registry, "core.batch.drains");
  EXPECT_GE(deferred, metrics.deferred_cycles);
  EXPECT_GT(drains, 0);
  // One drain-window observation per drain.
  EXPECT_EQ(registry
                .histogram("core.batch.drain_window",
                           obs::Histogram::exponential_bounds(1.0, 2.0, 7))
                .count(),
            drains);
  // The inner scheduler's solves flowed through the forwarded binding.
  EXPECT_GT(counter_value(registry, "flow.solves"), 0);
}

TEST(ObsSim, PooledExperimentStaysBitIdenticalAndPublishesBatchStats) {
  const topo::Network net = topo::make_named("omega", 8);
  sim::StaticExperimentConfig config;
  config.trials = 200;
  config.seed = 77;

  core::WarmContextPool plain_pool(2);
  const sim::StaticExperimentResult plain =
      sim::run_static_experiment_pooled(net, plain_pool, config, 2);

  core::WarmContextPool obs_pool(2);
  obs::Registry registry;
  const sim::StaticExperimentResult observed =
      sim::run_static_experiment_pooled(
          net, obs_pool, config, 2, /*canonical=*/false,
          core::WarmMaxFlowScheduler::kVerifyDefault,
          obs::Handle{&registry, nullptr});

  EXPECT_EQ(plain.trials, observed.trials);
  EXPECT_EQ(plain.total_allocated, observed.total_allocated);
  EXPECT_EQ(plain.total_opportunities, observed.total_opportunities);
  EXPECT_EQ(plain.batch_blocking, observed.batch_blocking);

  // Per-worker RunningStats merged after the join: one sample per batch.
  EXPECT_DOUBLE_EQ(registry.gauge("static_pooled.batch_us.count").value(),
                   static_cast<double>(observed.batch_blocking.size()));
  EXPECT_GT(registry.gauge("static_pooled.batch_us.mean").value(), 0.0);
  // Pool traffic: one checkout per worker, each returned on completion.
  EXPECT_EQ(counter_value(registry, "core.pool.checkouts"), 2);
  EXPECT_EQ(counter_value(registry, "core.pool.returns"), 2);
  // Warm solver counters flowed through the per-worker schedulers.
  EXPECT_GT(counter_value(registry, "flow.warm_cycles") +
                counter_value(registry, "flow.cold_rebuilds"),
            0);
}

TEST(ObsSim, UnbindingASchedulerStopsCounting) {
  const topo::Network net = topo::make_named("omega", 8);
  obs::Registry registry;
  core::WarmMaxFlowScheduler scheduler;
  scheduler.bind_obs(obs::Handle{&registry, nullptr});
  core::Problem problem;
  problem.network = &net;
  problem.requests.push_back({.processor = 0});
  problem.free_resources.push_back({.resource = 1});
  (void)scheduler.schedule(problem);
  const std::int64_t after_bound = counter_value(registry, "flow.warm_cycles") +
                                   counter_value(registry, "flow.cold_rebuilds");
  EXPECT_GT(after_bound, 0);

  scheduler.bind_obs(obs::Handle{});  // detach: all cached pointers cleared
  (void)scheduler.schedule(problem);
  EXPECT_EQ(counter_value(registry, "flow.warm_cycles") +
                counter_value(registry, "flow.cold_rebuilds"),
            after_bound);
}

}  // namespace
}  // namespace rsin
