#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rsin::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  std::ostringstream out;
  out << table;
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.columns(), 2u);
}

TEST(Table, ColumnsAreAligned) {
  Table table({"x", "longheader"});
  table.add_row({"longcell", "y"});
  std::ostringstream out;
  out << table;
  // Every line between rules must have the same length.
  std::istringstream lines(out.str());
  std::string line;
  std::size_t expected = 0;
  while (std::getline(lines, line)) {
    if (expected == 0) expected = line.size();
    EXPECT_EQ(line.size(), expected);
  }
}

TEST(Table, AddFormatsMixedTypes) {
  Table table({"s", "i", "d"});
  table.add("text", 42, 3.14159);
  std::ostringstream out;
  out << table;
  EXPECT_NE(out.str().find("text"), std::string::npos);
  EXPECT_NE(out.str().find("42"), std::string::npos);
  EXPECT_NE(out.str().find("3.142"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Formatting, FixedAndPercent) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
  EXPECT_EQ(pct(0.034, 1), "3.4");
  EXPECT_EQ(pct(1.0, 0), "100");
}

}  // namespace
}  // namespace rsin::util
