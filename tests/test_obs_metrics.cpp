// obs metrics primitives: counters (incl. the concurrent hammer the TSan
// suite leans on), gauges, histogram bucket-boundary semantics, and the
// Registry's naming / merge discipline.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace rsin::obs {
namespace {

TEST(ObsCounter, AddAccumulatesAndDefaultsToOne) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42);
}

TEST(ObsCounter, MergeFoldsQuiescentCounts) {
  Counter a;
  Counter b;
  a.add(10);
  b.add(32);
  a.merge(b);
  EXPECT_EQ(a.value(), 42);
  EXPECT_EQ(b.value(), 32);  // source untouched
}

// The TSan suite runs this: concurrent add() on the sharded cells must be
// race-free and lose nothing once the writers join.
TEST(ObsCounter, ConcurrentHammerLosesNothing) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.add();
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::int64_t>(kThreads) * kIncrements);
}

TEST(ObsGauge, SetAddAndMerge) {
  Gauge gauge;
  gauge.set(10.0);
  gauge.add(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 12.5);
  Gauge other;
  other.set(7.5);
  gauge.merge(other);
  EXPECT_DOUBLE_EQ(gauge.value(), 20.0);
}

TEST(ObsGauge, ConcurrentAddSumsExactly) {
  Gauge gauge;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&gauge] {
      for (int i = 0; i < kIncrements; ++i) gauge.add(1.0);
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_DOUBLE_EQ(gauge.value(), kThreads * kIncrements);
}

TEST(ObsHistogram, ValueOnUpperBoundLandsInThatBucket) {
  // Prometheus "le" semantics: bucket i counts v <= bounds[i], so an
  // observation exactly on a bound belongs to that bucket, not the next.
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.observe(1.0);
  histogram.observe(2.0);
  histogram.observe(4.0);
  EXPECT_EQ(histogram.bucket_count(0), 1);
  EXPECT_EQ(histogram.bucket_count(1), 1);
  EXPECT_EQ(histogram.bucket_count(2), 1);
  EXPECT_EQ(histogram.bucket_count(3), 0);  // overflow untouched
}

TEST(ObsHistogram, OverflowBucketCatchesAboveMaxBound) {
  Histogram histogram({1.0, 2.0});
  histogram.observe(2.0000001);
  histogram.observe(1e9);
  EXPECT_EQ(histogram.bucket_count(0), 0);
  EXPECT_EQ(histogram.bucket_count(1), 0);
  EXPECT_EQ(histogram.bucket_count(2), 2);
  EXPECT_EQ(histogram.count(), 2);
}

TEST(ObsHistogram, EmptyHistogramPercentilesAreZero) {
  const Histogram histogram({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(histogram.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(99.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.0);
}

TEST(ObsHistogram, PercentilesWalkTheBucketRanks) {
  Histogram histogram({1.0, 2.0, 4.0, 8.0});
  // 90 observations <= 1, 9 in (1, 2], 1 in (2, 4].
  for (int i = 0; i < 90; ++i) histogram.observe(0.5);
  for (int i = 0; i < 9; ++i) histogram.observe(1.5);
  histogram.observe(3.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(50.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(95.0), 2.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(99.0), 2.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(100.0), 4.0);
}

TEST(ObsHistogram, OverflowPercentileReportsObservedMax) {
  Histogram histogram({1.0});
  histogram.observe(123.5);
  // The overflow bucket has no finite upper bound; the observed max is the
  // only honest answer.
  EXPECT_DOUBLE_EQ(histogram.percentile(99.0), 123.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 123.5);
  EXPECT_DOUBLE_EQ(histogram.min(), 123.5);
}

TEST(ObsHistogram, RejectsMalformedBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
}

TEST(ObsHistogram, MergeAddsBucketwiseAndChecksBounds) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  a.observe(0.5);
  b.observe(1.5);
  b.observe(10.0);
  a.merge(b);
  EXPECT_EQ(a.bucket_count(0), 1);
  EXPECT_EQ(a.bucket_count(1), 1);
  EXPECT_EQ(a.bucket_count(2), 1);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  Histogram mismatched({1.0, 3.0});
  EXPECT_THROW(a.merge(mismatched), std::invalid_argument);
}

TEST(ObsHistogram, FailedMergeLeavesDestinationUnchanged) {
  // merge requires identical bounds (same constructor vector) — on a
  // mismatch it throws *before* touching any bucket, so the destination
  // is still exactly what it was. See the precondition in metrics.hpp.
  Histogram a({1.0, 2.0});
  a.observe(1.5);
  Histogram mismatched({1.0, 3.0});
  mismatched.observe(0.5);
  EXPECT_THROW(a.merge(mismatched), std::invalid_argument);
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.bucket_count(0), 0);
  EXPECT_EQ(a.bucket_count(1), 1);
  Histogram wrong_size({1.0});
  EXPECT_THROW(a.merge(wrong_size), std::invalid_argument);
  EXPECT_EQ(a.count(), 1);
}

TEST(ObsHistogram, ExponentialBoundsAndDefaultLatencyLadder) {
  const auto bounds = Histogram::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
  const auto& latency = Histogram::default_latency_bounds_us();
  ASSERT_FALSE(latency.empty());
  EXPECT_DOUBLE_EQ(latency.front(), 1.0);
  for (std::size_t i = 1; i < latency.size(); ++i) {
    EXPECT_LT(latency[i - 1], latency[i]);
  }
}

TEST(MetricsRegistry, SameNameReturnsTheSameInstrument) {
  Registry registry;
  Counter& counter = registry.counter("flow.solves");
  counter.add(3);
  EXPECT_EQ(registry.counter("flow.solves").value(), 3);
  Histogram& histogram = registry.histogram("lat", {1.0, 2.0});
  histogram.observe(1.5);
  EXPECT_EQ(registry.histogram("lat", {1.0, 2.0}).count(), 1);
}

TEST(MetricsRegistry, RejectsInvalidInstrumentNames) {
  Registry registry;
  EXPECT_THROW((void)registry.counter(""), std::invalid_argument);
  EXPECT_THROW((void)registry.counter("has space"), std::invalid_argument);
  EXPECT_THROW((void)registry.gauge("bad{label}"), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("newline\n"), std::invalid_argument);
  EXPECT_NO_THROW((void)registry.counter("ok_name.with:all-charsets_09"));
}

TEST(MetricsRegistry, HistogramReRequestMustAgreeOnBounds) {
  Registry registry;
  (void)registry.histogram("lat", {1.0, 2.0});
  EXPECT_THROW((void)registry.histogram("lat", {1.0, 3.0}),
               std::invalid_argument);
}

TEST(MetricsRegistry, MergeAggregatesByNameAndCreatesMissing) {
  Registry total;
  total.counter("shared").add(1);
  Registry worker;
  worker.counter("shared").add(2);
  worker.counter("worker_only").add(5);
  worker.gauge("depth").set(3.0);
  worker.histogram("lat", {1.0, 2.0}).observe(1.5);
  total.merge(worker);
  EXPECT_EQ(total.counter("shared").value(), 3);
  EXPECT_EQ(total.counter("worker_only").value(), 5);
  EXPECT_DOUBLE_EQ(total.gauge("depth").value(), 3.0);
  EXPECT_EQ(total.histogram("lat", {1.0, 2.0}).bucket_count(1), 1);
}

TEST(MetricsRegistry, SelfMergeIsANoop) {
  Registry registry;
  registry.counter("c").add(7);
  registry.merge(registry);
  EXPECT_EQ(registry.counter("c").value(), 7);
}

TEST(MetricsRegistry, MergeRejectsSameNameHistogramWithDifferentBounds) {
  Registry total;
  total.histogram("lat", {1.0, 2.0}).observe(1.5);
  Registry worker;
  worker.histogram("lat", {1.0, 4.0}).observe(1.5);
  EXPECT_THROW(total.merge(worker), std::invalid_argument);
  EXPECT_EQ(total.histogram("lat", {1.0, 2.0}).count(), 1)
      << "a rejected merge must not disturb the destination histogram";
}

TEST(MetricsRegistry, PrefixedMergeCreatesLabeledCopies) {
  // The federation export path: each cluster registry is folded twice,
  // once unprefixed (aggregate) and once under "fed.c<i>." (per-cluster).
  Registry total;
  Registry worker;
  worker.counter("granted").add(4);
  worker.gauge("level").set(2.0);
  worker.histogram("wait", {1.0, 2.0}).observe(1.5);
  total.merge(worker, "fed.c3.");
  EXPECT_EQ(total.counter("fed.c3.granted").value(), 4);
  EXPECT_DOUBLE_EQ(total.gauge("fed.c3.level").value(), 2.0);
  EXPECT_EQ(total.histogram("fed.c3.wait", {1.0, 2.0}).count(), 1);
  total.merge(worker, "fed.c3.");
  EXPECT_EQ(total.counter("fed.c3.granted").value(), 8)
      << "prefixed merge must accumulate, not overwrite";
  total.merge(worker, "");
  EXPECT_EQ(total.counter("granted").value(), 4)
      << "empty prefix degrades to the plain aggregate merge";
  EXPECT_THROW(total.merge(worker, "bad prefix "), std::invalid_argument);
  EXPECT_THROW(total.merge(total, "p."), std::invalid_argument)
      << "prefixed self-merge would mutate the map being iterated";
}

TEST(MetricsRegistry, SnapshotIsNameSortedWithPercentiles) {
  Registry registry;
  registry.counter("zeta").add(1);
  registry.counter("alpha").add(2);
  registry.gauge("depth").set(4.5);
  Histogram& histogram = registry.histogram("lat", {1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) histogram.observe(i < 97 ? 0.5 : 3.0);
  const Registry::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 4.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& h = snap.histograms[0];
  EXPECT_EQ(h.count, 100);
  EXPECT_DOUBLE_EQ(h.p50, 1.0);
  EXPECT_DOUBLE_EQ(h.p95, 1.0);
  EXPECT_DOUBLE_EQ(h.p99, 4.0);
  ASSERT_EQ(h.buckets.size(), h.bounds.size() + 1);
}

// Concurrent worker registries merged into one — the aggregation pattern
// run_static_experiment_pooled uses; exercised here for the TSan suite.
TEST(MetricsRegistry, ConcurrentWorkerRegistriesMergeExactly) {
  constexpr int kWorkers = 4;
  constexpr int kEvents = 5000;
  std::vector<Registry> workers(kWorkers);
  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&registry = workers[static_cast<std::size_t>(w)]] {
      Counter& events = registry.counter("events");
      Histogram& lat = registry.histogram("lat", {1.0, 2.0});
      for (int i = 0; i < kEvents; ++i) {
        events.add();
        lat.observe(i % 2 == 0 ? 0.5 : 1.5);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  Registry total;
  for (const Registry& worker : workers) total.merge(worker);
  EXPECT_EQ(total.counter("events").value(), kWorkers * kEvents);
  EXPECT_EQ(total.histogram("lat", {1.0, 2.0}).count(), kWorkers * kEvents);
}

}  // namespace
}  // namespace rsin::obs
