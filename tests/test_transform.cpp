#include "core/transform.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/routing.hpp"
#include "core/scheduler.hpp"
#include "flow/max_flow.hpp"
#include "flow/min_cost.hpp"
#include "flow/validate.hpp"
#include "topo/builders.hpp"

namespace rsin::core {
namespace {

TEST(Transformation1, NodeAndArcSetsFollowT1T2) {
  // Free 8x8 Omega, 3 requests, 2 free resources.
  const topo::Network net = topo::make_omega(8);
  const Problem problem = make_problem(net, {0, 1, 2}, {4, 5});
  const TransformResult transformed = transformation1(problem);

  // Nodes: s, t, 3 processors, 12 switches, 2 resources.
  EXPECT_EQ(transformed.net.node_count(), 2u + 3u + 12u + 2u);
  // Arcs: 3 source + (3 injection links whose processor exists) +
  // 16 inter-stage + (2 delivery links whose resource exists) + 2 sink.
  EXPECT_EQ(transformed.net.arc_count(), 3u + 3u + 16u + 2u + 2u);
  EXPECT_TRUE(transformed.net.is_unit_capacity());
  EXPECT_EQ(transformed.bypass, flow::kInvalidNode);
  EXPECT_EQ(transformed.request_count, 3);
}

TEST(Transformation1, OccupiedLinksGetNoArc) {
  topo::Network net = topo::make_omega(8);
  const auto paths = enumerate_free_paths(net, 7, 7);
  Problem problem = make_problem(net, {0, 1, 2}, {4, 5});
  const std::size_t arcs_free = transformation1(problem).net.arc_count();
  // Occupy an inter-stage link on some unrelated circuit.
  net.occupy_link(16);  // a stage-0 -> stage-1 link
  Problem problem2 = make_problem(net, {0, 1, 2}, {4, 5});
  const std::size_t arcs_occupied = transformation1(problem2).net.arc_count();
  EXPECT_EQ(arcs_occupied + 1, arcs_free);
  (void)paths;
}

TEST(Transformation1, ArcBookkeepingIsConsistent) {
  const topo::Network net = topo::make_omega(4);
  const Problem problem = make_problem(net, {0, 3}, {1, 2});
  const TransformResult transformed = transformation1(problem);
  ASSERT_EQ(transformed.arc_link.size(), transformed.net.arc_count());
  ASSERT_EQ(transformed.arc_processor.size(), transformed.net.arc_count());
  ASSERT_EQ(transformed.arc_resource.size(), transformed.net.arc_count());
  int source_arcs = 0;
  int sink_arcs = 0;
  int fabric_arcs = 0;
  for (std::size_t a = 0; a < transformed.net.arc_count(); ++a) {
    const bool is_source = transformed.arc_processor[a] != topo::kInvalidId;
    const bool is_sink = transformed.arc_resource[a] != topo::kInvalidId;
    const bool is_fabric = transformed.arc_link[a] != topo::kInvalidId;
    EXPECT_EQ(is_source + is_sink + is_fabric, 1)
        << "every arc has exactly one role";
    source_arcs += is_source;
    sink_arcs += is_sink;
    fabric_arcs += is_fabric;
  }
  EXPECT_EQ(source_arcs, 2);
  EXPECT_EQ(sink_arcs, 2);
  EXPECT_GT(fabric_arcs, 0);
}

TEST(Transformation1, RejectsHeterogeneousProblems) {
  const topo::Network net = topo::make_omega(4);
  Problem problem;
  problem.network = &net;
  problem.requests = {{0, 0, 0}, {1, 0, 1}};
  problem.free_resources = {{0, 0, 0}, {1, 0, 1}};
  EXPECT_THROW(transformation1(problem), std::invalid_argument);
}

TEST(Transformation1, MaxFlowEqualsAllocationsOnFreeNetwork) {
  // Theorem 2 sanity: on a free network with x requests, y resources,
  // max flow = min(x, y) when the topology admits it.
  const topo::Network net = topo::make_omega(8);
  const Problem problem = make_problem(net, {0, 1, 2, 3, 4}, {0, 1, 2});
  TransformResult transformed = transformation1(problem);
  const auto result = flow::max_flow_dinic(transformed.net);
  EXPECT_EQ(result.value, 3);
}

TEST(ExtractSchedule, ProducesVerifiableCircuits) {
  const topo::Network net = topo::make_omega(8);
  const Problem problem = make_problem(net, {1, 3, 6}, {0, 2, 7});
  TransformResult transformed = transformation1(problem);
  flow::max_flow_dinic(transformed.net);
  const ScheduleResult schedule = extract_schedule(problem, transformed);
  EXPECT_EQ(schedule.allocated(), 3u);
  EXPECT_FALSE(verify_schedule(problem, schedule).has_value());
}

TEST(ExtractSchedule, RejectsIllegalFlow) {
  const topo::Network net = topo::make_omega(4);
  const Problem problem = make_problem(net, {0}, {0});
  TransformResult transformed = transformation1(problem);
  // Manufacture a conservation violation.
  transformed.net.set_flow(0, 1);
  EXPECT_THROW(extract_schedule(problem, transformed), std::invalid_argument);
}

TEST(Transformation2, BypassStructure) {
  const topo::Network net = topo::make_omega(8);
  Problem problem;
  problem.network = &net;
  problem.requests = {{0, 5, 0}, {1, 9, 0}};
  problem.free_resources = {{3, 7, 0}};
  const TransformResult transformed = transformation2(problem);
  ASSERT_NE(transformed.bypass, flow::kInvalidNode);
  // Bypass node: one incoming arc per request, one outgoing to the sink.
  EXPECT_EQ(transformed.net.in_arcs(transformed.bypass).size(), 2u);
  ASSERT_EQ(transformed.net.out_arcs(transformed.bypass).size(), 1u);
  const auto& out =
      transformed.net.arc(transformed.net.out_arcs(transformed.bypass)[0]);
  EXPECT_EQ(out.capacity, 2);
  // Bypass cost = max(y_max+1, q_max+1) = 10.
  EXPECT_EQ(out.cost, 10);
}

TEST(Transformation2, CostFunctionMatchesT4) {
  const topo::Network net = topo::make_omega(8);
  Problem problem;
  problem.network = &net;
  problem.requests = {{0, 3, 0}, {1, 9, 0}};
  problem.free_resources = {{3, 2, 0}, {4, 7, 0}};
  const TransformResult transformed = transformation2(problem);
  // Source arcs: y_max - y_p = 9-3=6 and 9-9=0.
  std::vector<flow::Cost> source_costs;
  for (const auto a : transformed.net.out_arcs(transformed.net.source())) {
    source_costs.push_back(transformed.net.arc(a).cost);
  }
  std::sort(source_costs.begin(), source_costs.end());
  EXPECT_EQ(source_costs, (std::vector<flow::Cost>{0, 6}));
  // Sink arcs: q_max - q_w = 7-2=5 and 7-7=0 (bypass arc costs 10).
  std::vector<flow::Cost> sink_costs;
  for (const auto a : transformed.net.in_arcs(transformed.net.sink())) {
    sink_costs.push_back(transformed.net.arc(a).cost);
  }
  std::sort(sink_costs.begin(), sink_costs.end());
  EXPECT_EQ(sink_costs, (std::vector<flow::Cost>{0, 5, 10}));
}

TEST(Transformation2, FeasibleEvenWhenNetworkSaturated) {
  // All requests can always bypass: min-cost flow of F0 units exists even
  // with zero free resources reachable.
  topo::Network net = topo::make_omega(4);
  for (topo::LinkId l = 4; l < 8; ++l) net.occupy_link(l);  // stage links
  Problem problem;
  problem.network = &net;
  problem.requests = {{0, 1, 0}, {1, 2, 0}};
  problem.free_resources = {{0, 1, 0}};
  TransformResult transformed = transformation2(problem);
  const auto result =
      flow::min_cost_flow_ssp(transformed.net, transformed.request_count);
  EXPECT_TRUE(result.feasible);
}

TEST(Transformation2, Theorem3CountOptimalityThenPreference) {
  // Two requests, two resources with different preferences, but only one
  // can be allocated... actually on the free network both fit; the check:
  // minimum cost flow prefers the higher-preference resource when only one
  // request exists.
  const topo::Network net = topo::make_omega(8);
  Problem problem;
  problem.network = &net;
  problem.requests = {{2, 1, 0}};
  problem.free_resources = {{1, 2, 0}, {5, 9, 0}};
  MinCostScheduler scheduler;
  const ScheduleResult schedule = scheduler.schedule(problem);
  ASSERT_EQ(schedule.allocated(), 1u);
  EXPECT_EQ(schedule.assignments[0].resource.resource, 5)
      << "higher preference resource must be chosen";
}

TEST(Transformation2, PriorityWeightedModeFavorsUrgentRequests) {
  // Craft contention: both processors route to the single free resource;
  // with kPriorityWeighted the priority-9 request must win the resource.
  const topo::Network net = topo::make_omega(8);
  Problem problem;
  problem.network = &net;
  problem.requests = {{0, 1, 0}, {1, 9, 0}};
  problem.free_resources = {{4, 1, 0}};
  MinCostScheduler scheduler(flow::MinCostFlowAlgorithm::kSsp,
                             BypassCostMode::kPriorityWeighted);
  const ScheduleResult schedule = scheduler.schedule(problem);
  ASSERT_EQ(schedule.allocated(), 1u);
  EXPECT_EQ(schedule.assignments[0].request.processor, 1);
  EXPECT_EQ(schedule.assignments[0].request.priority, 9);
}

}  // namespace
}  // namespace rsin::core
