// Sharded warm-context pool + batching scheduler: the differential harness.
//
// The pool moves mutable warm-start state (PersistentTransform +
// ScheduleContext) across scheduler lifetimes and threads; the batching
// wrapper moves it across cycles. Both are pure *when* decisions — neither
// may change *what* gets scheduled. Every suite here pins that down against
// the cold MaxFlowScheduler(kDinic) reference: equal max-flow value on
// randomized topology x fault x burst sweeps, bitwise-equal assignments in
// canonical mode (extending the WarmStartCanonical pattern), plus the pool's
// ownership/kreying mechanics and a concurrent checkout hammer for TSan.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/batching.hpp"
#include "core/schedule.hpp"
#include "core/scheduler.hpp"
#include "core/warm_pool.hpp"
#include "sim/system_sim.hpp"
#include "test_helpers.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace {

using namespace rsin;

// --- pool mechanics -------------------------------------------------------

TEST(WarmPool, CheckoutCreatesAndReusesContexts) {
  const topo::Network net = topo::make_named("omega", 8);
  core::WarmContextPool pool(1);
  util::Rng rng(1);
  {
    core::WarmMaxFlowScheduler scheduler(pool.checkout(0, net),
                                         /*verify=*/true);
    for (int cycle = 0; cycle < 5; ++cycle) {
      scheduler.schedule(test::random_problem(rng, net, 0.5, 0.5));
    }
    EXPECT_EQ(scheduler.warm_stats().cold_rebuilds, 1);
    EXPECT_TRUE(scheduler.pooled());
  }  // scheduler destroyed -> lease files the context back into shard 0
  auto stats = pool.stats();
  EXPECT_EQ(stats.checkouts, 1);
  EXPECT_EQ(stats.cold_creates, 1);
  EXPECT_EQ(stats.returns, 1);
  EXPECT_EQ(stats.idle, 1);

  {
    core::WarmMaxFlowScheduler scheduler(pool.checkout(0, net),
                                         /*verify=*/true);
    // Second lease of the same context: the skeleton still matches, so the
    // next solves warm-resume the retained residual — no new cold rebuild.
    for (int cycle = 0; cycle < 5; ++cycle) {
      scheduler.schedule(test::random_problem(rng, net, 0.5, 0.5));
    }
    EXPECT_EQ(scheduler.warm_stats().cold_rebuilds, 1);
    EXPECT_EQ(scheduler.warm_stats().leases, 2);
  }
  stats = pool.stats();
  EXPECT_EQ(stats.checkouts, 2);
  EXPECT_EQ(stats.warm_hits, 1);
  EXPECT_EQ(stats.cold_creates, 1);
  EXPECT_EQ(stats.idle, 1);
}

TEST(WarmPool, ShapeKeyedRetention) {
  const topo::Network omega = topo::make_named("omega", 8);
  const topo::Network cube = topo::make_named("cube", 8);
  ASSERT_NE(omega.shape_hash(), cube.shape_hash());
  core::WarmContextPool pool(1);
  {
    core::WarmContextLease a = pool.checkout(0, omega);
    a->transform.build(omega);
    core::WarmContextLease b = pool.checkout(0, cube);
    b->transform.build(cube);
  }  // both returned, filed under their built shapes
  ASSERT_EQ(pool.stats().idle, 2);

  // A keyed checkout picks the matching skeleton, not just any idle one.
  core::WarmContextLease cube_lease = pool.checkout(0, cube);
  EXPECT_EQ(cube_lease->shape_key(), cube.shape_hash());
  core::WarmContextLease omega_lease = pool.checkout(0, omega);
  EXPECT_EQ(omega_lease->shape_key(), omega.shape_hash());
  EXPECT_EQ(pool.stats().warm_hits, 2);
  EXPECT_EQ(pool.stats().idle, 0);
}

TEST(WarmPool, ReturnReKeysAfterTopologyChange) {
  const topo::Network omega = topo::make_named("omega", 8);
  const topo::Network cube = topo::make_named("cube", 8);
  core::WarmContextPool pool(1);
  util::Rng rng(3);
  {
    // Check out for omega, but schedule cube problems: the scheduler
    // rebuilds the skeleton for cube inside the lease.
    core::WarmMaxFlowScheduler scheduler(pool.checkout(0, omega),
                                         /*verify=*/true);
    scheduler.schedule(test::random_problem(rng, cube, 0.6, 0.6));
  }
  // The return must file the context under the shape it NOW holds; a
  // checkout for cube is a warm hit, not a stale-key miss.
  const core::WarmContextLease lease = pool.checkout(0, cube);
  EXPECT_EQ(lease->shape_key(), cube.shape_hash());
  EXPECT_EQ(pool.stats().warm_hits, 1);
  EXPECT_EQ(pool.stats().shape_misses, 0);
}

TEST(WarmPool, ShardsAreIndependentAndWrap) {
  const topo::Network net = topo::make_named("omega", 8);
  core::WarmContextPool pool(2);
  EXPECT_EQ(pool.shard_count(), 2u);
  { const auto lease = pool.checkout(0, net); }
  // Shard 1 cannot see shard 0's idle context.
  { const auto lease = pool.checkout(1, net); }
  EXPECT_EQ(pool.stats().cold_creates, 2);
  // Worker ids wrap onto shards, so callers can pass them directly: this
  // lands on shard 1 and reuses its idle context instead of creating. The
  // context was returned unbuilt (no scheduler ran on it), so it counts as
  // a shape miss, not a warm hit — but no third context is created.
  { const auto lease = pool.checkout(3, net); }
  EXPECT_EQ(pool.stats().cold_creates, 2);
  EXPECT_EQ(pool.stats().shape_misses, 1);
  pool.clear();
  EXPECT_EQ(pool.stats().idle, 0);
}

TEST(WarmPool, MissHandsOutBuffersAnyway) {
  // A shape miss still reuses an idle context (solver buffers are shape-
  // agnostic); correctness comes from the scheduler's rebuild-on-mismatch.
  const topo::Network omega = topo::make_named("omega", 8);
  const topo::Network cube = topo::make_named("cube", 8);
  core::WarmContextPool pool(1);
  util::Rng rng(4);
  {
    core::WarmMaxFlowScheduler scheduler(pool.checkout(0, omega),
                                         /*verify=*/true);
    scheduler.schedule(test::random_problem(rng, omega, 0.5, 0.5));
  }
  core::WarmMaxFlowScheduler scheduler(pool.checkout(0, cube),
                                       /*verify=*/true);
  EXPECT_EQ(pool.stats().shape_misses, 1);
  EXPECT_EQ(pool.stats().cold_creates, 1);
  const core::Problem problem = test::random_problem(rng, cube, 0.5, 0.5);
  core::MaxFlowScheduler cold;
  EXPECT_EQ(scheduler.schedule(problem).allocated(),
            cold.schedule(problem).allocated());
}

TEST(WarmPool, LeaseMoveAndEarlyRelease) {
  const topo::Network net = topo::make_named("omega", 4);
  core::WarmContextPool pool(1);
  core::WarmContextLease a = pool.checkout(0, net);
  EXPECT_TRUE(a.valid());
  core::WarmContextLease b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): tested intent
  EXPECT_TRUE(b.valid());
  b.release();
  EXPECT_FALSE(b.valid());
  b.release();  // idempotent
  EXPECT_EQ(pool.stats().returns, 1);
  EXPECT_EQ(pool.stats().idle, 1);
}

TEST(WarmPool, RejectsZeroShardsAndEmptyLease) {
  EXPECT_THROW(core::WarmContextPool pool(0), std::invalid_argument);
  EXPECT_THROW(core::WarmMaxFlowScheduler scheduler{core::WarmContextLease{}},
               std::invalid_argument);
}

// --- differential sweeps vs cold Dinic ------------------------------------

/// One DES-style mutation step shared by the sweeps below: establish some
/// granted circuits, release some held ones, occasionally flip a link's
/// hardware state (the same stream the WarmStart* suites use).
void mutate(topo::Network& net, const core::ScheduleResult& result,
            util::Rng& rng) {
  for (const core::Assignment& a : result.assignments) {
    if (net.established_circuit(a.request.processor) == nullptr &&
        rng.bernoulli(0.5)) {
      net.establish(a.circuit);
    }
  }
  for (topo::ProcessorId p = 0; p < net.processor_count(); ++p) {
    if (const topo::Circuit* held = net.established_circuit(p);
        held != nullptr && rng.bernoulli(0.3)) {
      const topo::Circuit copy = *held;
      net.release(copy);
    }
  }
  if (rng.bernoulli(0.2)) {
    const auto link =
        static_cast<topo::LinkId>(rng.uniform_int(0, net.link_count() - 1));
    if (net.link_failed(link)) {
      net.repair_link(link);
    } else {
      net.fail_link(link);
    }
  }
}

/// Randomized topology x fault x burst sweep: a pool-backed scheduler whose
/// lease is dropped and re-checked-out mid-stream must allocate exactly the
/// cold MaxFlowScheduler(kDinic) count every cycle. Bursts alternate load so
/// drains repair against both tiny and huge capacity deltas.
TEST(WarmPool, DifferentialRandomSweep) {
  util::Rng rng(20260805);
  core::WarmContextPool pool(1);
  core::MaxFlowScheduler cold;
  int topology_index = 0;
  for (const char* name : {"omega", "cube", "baseline"}) {
    topo::Network net = topo::make_named(name, 8);
    auto scheduler = std::make_unique<core::WarmMaxFlowScheduler>(
        pool.checkout(0, net), /*verify=*/true);
    for (int cycle = 0; cycle < 120; ++cycle) {
      if (cycle % 40 == 39) {
        // Drop the scheduler mid-stream; the next one resumes the same
        // context from the pool.
        scheduler.reset();
        scheduler = std::make_unique<core::WarmMaxFlowScheduler>(
            pool.checkout(0, net), /*verify=*/true);
      }
      const bool burst = (cycle / 10) % 2 == 1;
      const core::Problem problem =
          test::random_problem(rng, net, burst ? 0.9 : 0.3, 0.5);
      const core::ScheduleResult warm_result = scheduler->schedule(problem);
      const core::ScheduleResult cold_result = cold.schedule(problem);
      EXPECT_EQ(warm_result.allocated(), cold_result.allocated())
          << name << " cycle " << cycle;
      const auto violation = core::verify_schedule(problem, warm_result);
      EXPECT_FALSE(violation.has_value()) << violation.value_or("");
      mutate(net, warm_result, rng);
    }
    // One context serves everything: per topology, 4 scheduler lifetimes
    // (initial + re-checkouts at cycles 39/79/119) share a single cold
    // rebuild; switching topology forces exactly one more.
    ++topology_index;
    EXPECT_EQ(scheduler->warm_stats().cold_rebuilds, topology_index) << name;
    EXPECT_EQ(scheduler->warm_stats().leases, 4 * topology_index) << name;
  }
  EXPECT_EQ(pool.stats().cold_creates, 1);
}

/// Canonical mode through the pool must stay bitwise identical to cold
/// Dinic — including across a lease return/re-checkout boundary.
TEST(WarmPoolCanonical, BitwiseIdenticalAcrossLeaseBoundaries) {
  topo::Network net = topo::make_named("omega", 8);
  core::WarmContextPool pool(1);
  core::MaxFlowScheduler cold(flow::MaxFlowAlgorithm::kDinic);
  util::Rng rng(42);
  for (int segment = 0; segment < 3; ++segment) {
    core::WarmMaxFlowScheduler canonical(pool.checkout(0, net),
                                         /*verify=*/true, /*canonical=*/true);
    for (int cycle = 0; cycle < 40; ++cycle) {
      const core::Problem problem = test::random_problem(rng, net, 0.5, 0.5);
      const core::ScheduleResult a = canonical.schedule(problem);
      const core::ScheduleResult b = cold.schedule(problem);
      ASSERT_EQ(a.assignments.size(), b.assignments.size())
          << "segment " << segment << " cycle " << cycle;
      for (std::size_t i = 0; i < a.assignments.size(); ++i) {
        EXPECT_EQ(a.assignments[i].request.processor,
                  b.assignments[i].request.processor);
        EXPECT_EQ(a.assignments[i].resource.resource,
                  b.assignments[i].resource.resource);
        EXPECT_EQ(a.assignments[i].circuit.links,
                  b.assignments[i].circuit.links);
      }
      mutate(net, a, rng);
    }
  }
}

/// TSan target: hammer checkout/schedule/return from many threads. Each
/// thread owns a private network copy; the only shared object is the pool.
TEST(WarmPool, ConcurrentCheckoutHammer) {
  const topo::Network net = topo::make_named("omega", 8);
  constexpr int kThreads = 8;
  constexpr int kIterations = 40;
  core::WarmContextPool pool(4);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &net, t] {
      topo::Network local = net;
      util::Rng rng(static_cast<std::uint64_t>(t) + 1);
      core::MaxFlowScheduler cold;
      for (int i = 0; i < kIterations; ++i) {
        core::WarmMaxFlowScheduler scheduler(
            pool.checkout(static_cast<std::size_t>(t), local),
            /*verify=*/false);
        const core::Problem problem =
            test::random_problem(rng, local, 0.5, 0.5);
        ASSERT_EQ(scheduler.schedule(problem).allocated(),
                  cold.schedule(problem).allocated())
            << "thread " << t << " iteration " << i;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto stats = pool.stats();
  EXPECT_EQ(stats.checkouts, kThreads * kIterations);
  EXPECT_EQ(stats.returns, stats.checkouts);
  EXPECT_EQ(stats.idle, stats.cold_creates);
  EXPECT_GT(stats.warm_hits, 0);
}

// --- batching scheduler ---------------------------------------------------

/// Counts inner solves (drains) while delegating to a real scheduler.
class CountingScheduler final : public core::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "counting"; }
  core::ScheduleResult schedule(const core::Problem& problem) override {
    ++calls;
    return inner.schedule(problem);
  }
  int calls = 0;

 private:
  core::GreedyScheduler inner;
};

core::Problem pending_problem(const topo::Network& net) {
  core::Problem problem;
  problem.network = &net;
  problem.requests.push_back({0, 0, 0});
  core::FreeResource resource;
  resource.resource = 0;
  problem.free_resources.push_back(resource);
  return problem;
}

TEST(Batching, DefersUntilWindowThenDrains) {
  const topo::Network net = topo::make_named("omega", 8);
  auto counting = std::make_unique<CountingScheduler>();
  CountingScheduler* counter = counting.get();
  core::BatchingScheduler batch(std::move(counting), {/*window=*/3});
  const core::Problem problem = pending_problem(net);
  for (int cycle = 1; cycle <= 6; ++cycle) {
    const core::ScheduleResult result = batch.schedule(problem);
    if (cycle % 3 == 0) {
      EXPECT_NE(batch.last_report().outcome,
                core::ScheduleOutcome::kDeferred);
      EXPECT_EQ(batch.last_report().batched_cycles, 3);
      EXPECT_EQ(result.allocated(), 1u) << "cycle " << cycle;
    } else {
      EXPECT_EQ(batch.last_report().outcome,
                core::ScheduleOutcome::kDeferred);
      EXPECT_EQ(batch.last_report().batched_cycles, 0);
      EXPECT_TRUE(result.assignments.empty());
    }
  }
  EXPECT_EQ(counter->calls, 2);
  EXPECT_EQ(batch.deferred_cycles(), 4);
  EXPECT_EQ(batch.drains(), 2);
}

TEST(Batching, DeadlineForcesEarlyDrain) {
  const topo::Network net = topo::make_named("omega", 8);
  core::BatchingScheduler batch(std::make_unique<CountingScheduler>(),
                                {/*window=*/10, /*deadline_cycles=*/2});
  const core::Problem problem = pending_problem(net);
  batch.schedule(problem);
  EXPECT_EQ(batch.last_report().outcome, core::ScheduleOutcome::kDeferred);
  // The same request is still pending on the second call: age 2 hits the
  // deadline and drains a window of 2, far before the window of 10.
  batch.schedule(problem);
  EXPECT_NE(batch.last_report().outcome, core::ScheduleOutcome::kDeferred);
  EXPECT_EQ(batch.last_report().batched_cycles, 2);
}

TEST(Batching, DeadlineAgesOnlyPersistingRequests) {
  const topo::Network net = topo::make_named("omega", 8);
  core::BatchingScheduler batch(std::make_unique<CountingScheduler>(),
                                {/*window=*/4, /*deadline_cycles=*/2});
  core::Problem a = pending_problem(net);
  core::Problem b = pending_problem(net);
  b.requests[0].processor = 1;  // different processor: ages restart
  batch.schedule(a);
  batch.schedule(b);
  // Neither request was present twice in a row, so no deadline fired yet.
  EXPECT_EQ(batch.last_report().outcome, core::ScheduleOutcome::kDeferred);
  batch.schedule(b);  // b's request is now 2 cycles old -> drain
  EXPECT_EQ(batch.last_report().batched_cycles, 3);
}

TEST(Batching, WindowOneIsTransparent) {
  const topo::Network net = topo::make_named("omega", 8);
  auto counting = std::make_unique<CountingScheduler>();
  CountingScheduler* counter = counting.get();
  core::BatchingScheduler batch(std::move(counting), {/*window=*/1});
  const core::Problem problem = pending_problem(net);
  for (int cycle = 0; cycle < 4; ++cycle) {
    batch.schedule(problem);
    EXPECT_EQ(batch.last_report().outcome, core::ScheduleOutcome::kOptimal);
    EXPECT_EQ(batch.last_report().batched_cycles, 1);
  }
  EXPECT_EQ(counter->calls, 4);
  EXPECT_EQ(batch.deferred_cycles(), 0);
}

TEST(Batching, ResetClearsTheWindow) {
  const topo::Network net = topo::make_named("omega", 8);
  auto counting = std::make_unique<CountingScheduler>();
  CountingScheduler* counter = counting.get();
  core::BatchingScheduler batch(std::move(counting), {/*window=*/3});
  const core::Problem problem = pending_problem(net);
  batch.schedule(problem);
  batch.schedule(problem);
  batch.reset();  // e.g. the overload ladder recovering from greedy bypass
  // A full fresh window is needed again: two accumulated cycles are gone.
  batch.schedule(problem);
  batch.schedule(problem);
  EXPECT_EQ(counter->calls, 0);
  batch.schedule(problem);
  EXPECT_EQ(counter->calls, 1);
  EXPECT_EQ(batch.last_report().batched_cycles, 3);
}

TEST(Batching, PropagatesInnerReportOnDrain) {
  const topo::Network net = topo::make_named("omega", 8);
  core::BatchingScheduler batch(
      std::make_unique<core::CircuitBreakerScheduler>(core::BreakerConfig{},
                                                      /*verify=*/true),
      {/*window=*/2});
  const core::Problem problem = pending_problem(net);
  batch.schedule(problem);
  EXPECT_EQ(batch.last_report().outcome, core::ScheduleOutcome::kDeferred);
  batch.schedule(problem);
  EXPECT_EQ(batch.last_report().outcome, core::ScheduleOutcome::kOptimal);
  EXPECT_EQ(batch.last_report().breaker, core::BreakerState::kClosed);
  EXPECT_EQ(batch.last_report().batched_cycles, 2);
  EXPECT_NE(batch.name().find("batch(w=2"), std::string::npos);
}

TEST(Batching, DrainAllocationMatchesColdOnMutationStream) {
  // The drained snapshot already carries every deferred cycle's surviving
  // requests, so each drain must still be the optimal (cold-equal) solve of
  // that snapshot. Warm inner + differential verify makes divergence throw.
  topo::Network net = topo::make_named("omega", 8);
  core::BatchingScheduler batch(
      std::make_unique<core::WarmMaxFlowScheduler>(/*verify=*/true),
      {/*window=*/3, /*deadline_cycles=*/2});
  core::MaxFlowScheduler cold;
  util::Rng rng(77);
  for (int cycle = 0; cycle < 90; ++cycle) {
    const core::Problem problem = test::random_problem(rng, net, 0.5, 0.5);
    const core::ScheduleResult result = batch.schedule(problem);
    if (batch.last_report().outcome == core::ScheduleOutcome::kDeferred) {
      EXPECT_TRUE(result.assignments.empty());
    } else {
      EXPECT_EQ(result.allocated(), cold.schedule(problem).allocated())
          << "cycle " << cycle;
      mutate(net, result, rng);
    }
  }
  EXPECT_GT(batch.deferred_cycles(), 0);
  EXPECT_GT(batch.drains(), 0);
}

TEST(Batching, RejectsBadPolicy) {
  EXPECT_THROW(core::BatchingScheduler(nullptr, {/*window=*/2}),
               std::invalid_argument);
  EXPECT_THROW(core::BatchingScheduler(
                   std::make_unique<core::GreedyScheduler>(), {/*window=*/0}),
               std::invalid_argument);
  EXPECT_THROW(
      core::BatchingScheduler(std::make_unique<core::GreedyScheduler>(),
                              {/*window=*/2, /*deadline_cycles=*/5}),
      std::invalid_argument);
}

// --- DES integration: the one-outcome-per-cycle fix -----------------------

/// Regression for the FallbackReport-per-cycle assumption: a clean batched
/// DES run defers most cycles, and those deferrals must neither count as
/// degraded service nor inflate blocking. Before the fix, every deferred
/// cycle's empty result was accounted as a served cycle, pushing
/// degraded_cycle_fraction and blocking_probability toward 1.
TEST(Batching, DesAccountsDeferredCyclesSeparately) {
  const topo::Network net = topo::make_named("omega", 8);
  sim::SystemConfig config;
  config.arrival_rate = 0.8;
  config.warmup_time = 10.0;
  config.measure_time = 150.0;
  config.seed = 21;
  config.validate_invariants = true;

  core::BatchingScheduler batch(
      std::make_unique<core::CircuitBreakerScheduler>(core::BreakerConfig{},
                                                      /*verify=*/true),
      {/*window=*/4, /*deadline_cycles=*/3});
  const sim::SystemMetrics metrics = sim::simulate_system(net, batch, config);

  EXPECT_GT(metrics.deferred_cycles, 0);
  EXPECT_GT(metrics.scheduling_cycles, 0);
  // Every solve on a healthy breaker is optimal; deferrals must not have
  // been misfiled as degraded cycles.
  EXPECT_EQ(metrics.degraded_cycle_fraction, 0.0);
  // Blocking is per *served* cycle; deferred cycles' requests survive to
  // the drain, so a batched run cannot report near-total blocking.
  EXPECT_LT(metrics.blocking_probability, 0.9);
  EXPECT_GT(metrics.tasks_completed, 0);
}

/// Batching trades latency for throughput knobs, never tasks: with bounded
/// queues and invariants on, conservation holds across a long batched run.
TEST(Batching, DesConservationHoldsUnderBatchingWithAdmissionControl) {
  const topo::Network net = topo::make_named("omega", 8);
  sim::SystemConfig config;
  config.arrival_rate = 1.2;
  config.warmup_time = 5.0;
  config.measure_time = 100.0;
  config.seed = 33;
  config.max_queue = 4;
  config.validate_invariants = true;  // per-cycle conservation sweep
  core::BatchingScheduler batch(
      std::make_unique<core::WarmMaxFlowScheduler>(/*verify=*/true),
      {/*window=*/3, /*deadline_cycles=*/2});
  const sim::SystemMetrics metrics = sim::simulate_system(net, batch, config);
  EXPECT_GT(metrics.tasks_completed, 0);
  EXPECT_GT(metrics.deferred_cycles, 0);
}

}  // namespace
