#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace rsin::sim {
namespace {

TEST(RunningStat, MeanAndVariance) {
  RunningStat stat;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.add(x);
  EXPECT_EQ(stat.count(), 8);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat stat;
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
  stat.add(42.0);
  EXPECT_DOUBLE_EQ(stat.mean(), 42.0);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_EQ(stat.ci95_half_width(), 0.0);
}

TEST(RunningStat, ConfidenceIntervalShrinks) {
  RunningStat small;
  RunningStat large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : 3.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : 3.0);
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(RunningStat, MergeMatchesSequentialAccumulation) {
  // Chan's parallel combination must be as-if every observation had been
  // add()ed to one accumulator, to floating-point noise.
  const double samples[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0, 1.5, 8.25};
  RunningStat sequential;
  RunningStat left;
  RunningStat right;
  int i = 0;
  for (const double x : samples) {
    sequential.add(x);
    (i++ < 4 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), sequential.count());
  EXPECT_NEAR(left.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), sequential.variance(), 1e-12);
}

TEST(RunningStat, MergeWithEmptySidesIsExact) {
  RunningStat populated;
  populated.add(1.0);
  populated.add(3.0);

  RunningStat empty;
  populated.merge(empty);  // no-op
  EXPECT_EQ(populated.count(), 2);
  EXPECT_DOUBLE_EQ(populated.mean(), 2.0);

  RunningStat target;
  target.merge(populated);  // empty target adopts the source verbatim
  EXPECT_EQ(target.count(), 2);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
  EXPECT_DOUBLE_EQ(target.variance(), populated.variance());
}

TEST(RunningStat, MergeManyWorkersMatchesOnePass) {
  // The run_static_experiment_pooled aggregation shape: several per-worker
  // accumulators with different sample counts folded into one.
  RunningStat one_pass;
  RunningStat workers[3];
  for (int i = 0; i < 300; ++i) {
    const double x = 0.25 * i - 20.0;
    one_pass.add(x);
    workers[i % 3].add(x);
  }
  RunningStat merged;
  for (RunningStat& worker : workers) merged.merge(worker);
  EXPECT_EQ(merged.count(), one_pass.count());
  EXPECT_NEAR(merged.mean(), one_pass.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), one_pass.variance(), 1e-9);
  EXPECT_NEAR(merged.ci95_half_width(), one_pass.ci95_half_width(), 1e-9);
}

TEST(TimeWeightedStat, PiecewiseConstantAverage) {
  TimeWeightedStat stat(0.0, 0.0);
  stat.update(1.0, 2.0);  // value 0 over [0,1)
  stat.update(3.0, 4.0);  // value 2 over [1,3)
  // value 4 over [3,5): average = (0*1 + 2*2 + 4*2) / 5 = 12/5.
  EXPECT_DOUBLE_EQ(stat.average(5.0), 12.0 / 5.0);
  EXPECT_DOUBLE_EQ(stat.current(), 4.0);
}

TEST(TimeWeightedStat, ResetDiscardsHistory) {
  TimeWeightedStat stat(0.0, 10.0);
  stat.update(5.0, 10.0);
  stat.reset(5.0);
  stat.update(6.0, 0.0);  // value 10 over [5,6), 0 over [6,7)
  EXPECT_DOUBLE_EQ(stat.average(7.0), 5.0);
}

TEST(TimeWeightedStat, RejectsTimeTravel) {
  TimeWeightedStat stat(5.0, 0.0);
  EXPECT_THROW(stat.update(4.0, 1.0), std::invalid_argument);
}

TEST(TimeWeightedStat, ZeroSpanAverage) {
  TimeWeightedStat stat(1.0, 3.0);
  EXPECT_EQ(stat.average(1.0), 0.0);
}

}  // namespace
}  // namespace rsin::sim
