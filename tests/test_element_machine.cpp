#include "token/element_machine.hpp"

#include <gtest/gtest.h>

#include "core/routing.hpp"
#include "core/scheduler.hpp"
#include "test_helpers.hpp"
#include "token/token_machine.hpp"
#include "topo/builders.hpp"

namespace rsin::token {
namespace {

TEST(ElementMachine, AllocatesAllOnFreeOmega) {
  const topo::Network net = topo::make_omega(8);
  const core::Problem problem =
      core::make_problem(net, {0, 2, 4, 6, 7}, {0, 2, 4, 6, 7});
  ElementMachine machine(problem);
  ElementStats stats;
  const core::ScheduleResult result = machine.run(&stats);
  EXPECT_EQ(result.allocated(), 5u);
  EXPECT_FALSE(core::verify_schedule(problem, result).has_value());
  EXPECT_GE(stats.iterations, 1);
  EXPECT_GT(stats.clock_periods, 0);
  EXPECT_GT(stats.signals_driven, 0);
}

TEST(ElementMachine, EmptyProblemStaysIdle) {
  const topo::Network net = topo::make_omega(8);
  const core::Problem problem = core::make_problem(net, {}, {0, 1});
  ElementMachine machine(problem);
  ElementStats stats;
  const core::ScheduleResult result = machine.run(&stats);
  EXPECT_EQ(result.allocated(), 0u);
  EXPECT_EQ(stats.iterations, 0);
  // Without E1 the bus never shows both go bits, so the machine idles out
  // after the first sample.
  EXPECT_LE(stats.clock_periods, 2);
}

TEST(ElementMachine, PendingRequestWithOccupiedInjectionLink) {
  topo::Network net = topo::make_omega(8);
  net.occupy_link(net.processor_link(0));
  const core::Problem problem = core::make_problem(net, {0}, {3});
  ElementMachine machine(problem);
  const core::ScheduleResult result = machine.run();
  EXPECT_EQ(result.allocated(), 0u)
      << "no token can even be launched; the cycle must end cleanly";
}

TEST(ElementMachine, RejectsHeterogeneousProblems) {
  const topo::Network net = topo::make_omega(4);
  core::Problem problem;
  problem.network = &net;
  problem.requests = {{0, 0, 0}, {1, 0, 1}};
  problem.free_resources = {{0, 0, 0}, {1, 0, 1}};
  EXPECT_THROW(ElementMachine machine(problem), std::invalid_argument);
}

TEST(ElementMachine, BusTraceShowsTheFig10Sequence) {
  const topo::Network net = topo::make_omega(8);
  const core::Problem problem = core::make_problem(net, {0, 3}, {2, 6});
  ElementMachine machine(problem);
  ElementStats stats;
  machine.run(&stats);
  // The canonical vector sequence: ...E3... then E6, then E4s, then E5.
  bool saw_e3 = false;
  bool saw_e6 = false;
  bool saw_e4 = false;
  bool saw_e5 = false;
  for (const BusSample& sample : stats.bus_trace) {
    if (bus_vector_x(sample.bits) == "111000x") saw_e3 = true;
    if ((sample.bits & kResourceReached) && saw_e3) saw_e6 = true;
    if ((sample.bits & kResourceTokenPhase) && saw_e6) saw_e4 = true;
    if ((sample.bits & kPathRegistration) && saw_e4) saw_e5 = true;
  }
  EXPECT_TRUE(saw_e3);
  EXPECT_TRUE(saw_e6);
  EXPECT_TRUE(saw_e4);
  EXPECT_TRUE(saw_e5);
  EXPECT_TRUE(stats.bus_trace.back().bits & kBonded);
}

TEST(ElementMachine, OneWireOneDriverInvariantHolds) {
  // The machine internally asserts that no wire is driven twice in one
  // clock; a dense all-request instance exercises the worst contention.
  const topo::Network net = topo::make_benes(8);
  std::vector<topo::ProcessorId> all{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<topo::ResourceId> res{0, 1, 2, 3, 4, 5, 6, 7};
  const core::Problem problem = core::make_problem(net, all, res);
  ElementMachine machine(problem);
  EXPECT_NO_THROW({
    const auto result = machine.run();
    EXPECT_EQ(result.allocated(), 8u);
  });
}

class ElementMachineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ElementMachineSweep, MatchesDinicAndTokenMachineEverywhere) {
  util::Rng rng(GetParam());
  core::MaxFlowScheduler dinic;
  for (const char* topology :
       {"omega", "cube", "baseline", "butterfly", "benes", "gamma",
        "crossbar"}) {
    topo::Network net = topo::make_named(topology, 8);
    for (int round = 0; round < 4; ++round) {
      net.release_all();
      core::Problem problem = rsin::test::random_problem(rng, net, 0.6, 0.6);
      // Occasionally pre-occupy one circuit.
      if (rng.bernoulli(0.4) && !problem.requests.empty()) {
        const auto busy = core::first_free_path(
            net, problem.requests.front().processor,
            [&](topo::ResourceId) { return true; });
        if (busy) {
          net.establish(*busy);
          problem.requests.erase(problem.requests.begin());
        }
      }
      ElementMachine element_machine(problem);
      const core::ScheduleResult element_result = element_machine.run();
      EXPECT_FALSE(
          core::verify_schedule(problem, element_result).has_value());

      TokenMachine token_machine(problem);
      const core::ScheduleResult token_result = token_machine.run();
      const core::ScheduleResult dinic_result = dinic.schedule(problem);
      EXPECT_EQ(element_result.allocated(), dinic_result.allocated())
          << topology << " seed " << GetParam() << " round " << round;
      EXPECT_EQ(element_result.allocated(), token_result.allocated());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElementMachineSweep,
                         ::testing::Values(301, 302, 303, 304, 305, 306));

TEST(ElementScheduler, AdapterWorks) {
  const topo::Network net = topo::make_omega(8);
  const core::Problem problem = core::make_problem(net, {1, 5}, {2, 6});
  ElementScheduler scheduler;
  EXPECT_EQ(scheduler.name(), "token-machine(element-local)");
  const core::ScheduleResult result = scheduler.schedule(problem);
  EXPECT_EQ(result.allocated(), 2u);
  EXPECT_GT(result.operations, 0);
}

TEST(ElementMachine, ClockCountComparableToOrchestratedMachine) {
  // The element-local realization pays a small constant bus-latch overhead
  // per phase but must stay within a small factor of TokenMachine.
  const topo::Network net = topo::make_omega(16);
  std::vector<topo::ProcessorId> req;
  std::vector<topo::ResourceId> res;
  for (int i = 0; i < 16; ++i) {
    req.push_back(i);
    res.push_back(i);
  }
  const core::Problem problem = core::make_problem(net, req, res);
  ElementStats element_stats;
  TokenStats token_stats;
  ElementMachine(problem).run(&element_stats);
  TokenMachine(problem).run(&token_stats);
  EXPECT_LT(element_stats.clock_periods, 4 * token_stats.clock_periods + 16);
}

}  // namespace
}  // namespace rsin::token
