#include "token/token_machine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/routing.hpp"
#include "core/scheduler.hpp"
#include "test_helpers.hpp"
#include "token/monitor.hpp"
#include "topo/builders.hpp"

namespace rsin::token {
namespace {

TEST(TokenMachine, AllocatesAllOnFreeOmega) {
  const topo::Network net = topo::make_omega(8);
  const core::Problem problem =
      core::make_problem(net, {0, 2, 4, 6}, {1, 3, 5, 7});
  TokenMachine machine(problem);
  TokenStats stats;
  const core::ScheduleResult result = machine.run(&stats);
  EXPECT_EQ(result.allocated(), 4u);
  EXPECT_FALSE(core::verify_schedule(problem, result).has_value());
  EXPECT_GE(stats.iterations, 1);
  EXPECT_GT(stats.clock_periods, 0);
  EXPECT_GT(stats.tokens_propagated, 0);
}

TEST(TokenMachine, EmptyProblemTerminatesImmediately) {
  const topo::Network net = topo::make_omega(8);
  const core::Problem problem = core::make_problem(net, {}, {0, 1});
  TokenMachine machine(problem);
  TokenStats stats;
  const core::ScheduleResult result = machine.run(&stats);
  EXPECT_EQ(result.allocated(), 0u);
  EXPECT_EQ(stats.iterations, 0);
}

TEST(TokenMachine, NoFreeResources) {
  const topo::Network net = topo::make_omega(8);
  const core::Problem problem = core::make_problem(net, {0, 1}, {});
  TokenMachine machine(problem);
  const core::ScheduleResult result = machine.run();
  EXPECT_EQ(result.allocated(), 0u);
}

TEST(TokenMachine, RejectsHeterogeneousProblems) {
  const topo::Network net = topo::make_omega(4);
  core::Problem problem;
  problem.network = &net;
  problem.requests = {{0, 0, 0}, {1, 0, 1}};  // two distinct types
  problem.free_resources = {{0, 0, 0}, {1, 0, 1}};
  EXPECT_THROW(TokenMachine machine(problem), std::invalid_argument);
}

class TokenVsDinicSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TokenVsDinicSweep, MatchesMaxFlowCountOnRandomInstances) {
  util::Rng rng(GetParam());
  core::MaxFlowScheduler dinic;
  for (const char* topology : {"omega", "cube", "baseline", "butterfly"}) {
    topo::Network net = topo::make_named(topology, 8);
    for (int round = 0; round < 5; ++round) {
      net.release_all();
      core::Problem problem = rsin::test::random_problem(rng, net, 0.6, 0.6);
      // Sometimes pre-occupy a random circuit to exercise partially busy
      // fabrics.
      if (rng.bernoulli(0.5)) {
        std::vector<topo::ProcessorId> idle;
        for (topo::ProcessorId p = 0; p < 8; ++p) {
          const bool requesting = std::any_of(
              problem.requests.begin(), problem.requests.end(),
              [&](const core::Request& r) { return r.processor == p; });
          if (!requesting) idle.push_back(p);
        }
        std::vector<topo::ResourceId> busy;
        for (topo::ResourceId r = 0; r < 8; ++r) {
          const bool free = std::any_of(
              problem.free_resources.begin(), problem.free_resources.end(),
              [&](const core::FreeResource& f) { return f.resource == r; });
          if (!free) busy.push_back(r);
        }
        if (!idle.empty() && !busy.empty()) {
          const auto circuit = core::first_free_path(
              net, idle.front(),
              [&](topo::ResourceId r) { return r == busy.front(); });
          if (circuit) net.establish(*circuit);
        }
      }

      TokenMachine machine(problem);
      const core::ScheduleResult token_result = machine.run();
      const core::ScheduleResult dinic_result = dinic.schedule(problem);
      EXPECT_EQ(token_result.allocated(), dinic_result.allocated())
          << topology << " seed " << GetParam() << " round " << round;
      EXPECT_FALSE(core::verify_schedule(problem, token_result).has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenVsDinicSweep,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38));

TEST(TokenMachine, BusTraceFollowsFig10) {
  const topo::Network net = topo::make_omega(8);
  const core::Problem problem = core::make_problem(net, {0, 3}, {2, 6});
  TokenMachine machine(problem);
  TokenStats stats;
  machine.run(&stats);
  ASSERT_GE(stats.bus_trace.size(), 5u);

  // First sample: idle with requests pending and resources ready -> 11....
  EXPECT_TRUE(stats.bus_trace.front().bits & kRequestPending);
  EXPECT_TRUE(stats.bus_trace.front().bits & kResourceReady);

  // The paper's canonical vectors must appear in order: request-token
  // propagation (111000x), E6 (111001x), resource-token (1.0100x),
  // registration (1.0110x).
  bool saw_e3 = false;
  bool saw_e6 = false;
  bool saw_e4 = false;
  bool saw_e5 = false;
  for (const BusSample& sample : stats.bus_trace) {
    if (bus_vector_x(sample.bits) == "111000x") saw_e3 = true;
    if ((sample.bits & kResourceReached) && saw_e3) saw_e6 = true;
    if ((sample.bits & kResourceTokenPhase) &&
        !(sample.bits & kPathRegistration) && saw_e6) {
      saw_e4 = true;
    }
    if ((sample.bits & kPathRegistration) && saw_e4) saw_e5 = true;
  }
  EXPECT_TRUE(saw_e3);
  EXPECT_TRUE(saw_e6);
  EXPECT_TRUE(saw_e4);
  EXPECT_TRUE(saw_e5);

  // After allocation the bonded bit is visible in the final sample.
  EXPECT_TRUE(stats.bus_trace.back().bits & kBonded);
}

TEST(TokenMachine, ClockPeriodsScaleWithStagesNotRequests) {
  // The distributed search is parallel: doubling the number of requests on
  // the same fabric should not double the clock count.
  const topo::Network net = topo::make_omega(16);
  const core::Problem small =
      core::make_problem(net, {0, 1}, {0, 1});
  const core::Problem large = core::make_problem(
      net, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  TokenStats small_stats;
  TokenStats large_stats;
  TokenMachine(small).run(&small_stats);
  TokenMachine(large).run(&large_stats);
  EXPECT_LT(large_stats.clock_periods,
            6 * std::max<std::int64_t>(small_stats.clock_periods, 1))
      << "clock periods grow far slower than the 6x request count";
}

TEST(Monitor, MatchesTokenMachineAllocation) {
  util::Rng rng(40);
  const topo::Network net = topo::make_omega(8);
  Monitor monitor;
  for (int round = 0; round < 10; ++round) {
    const core::Problem problem =
        rsin::test::random_problem(rng, net, 0.6, 0.6);
    MonitorStats monitor_stats;
    const core::ScheduleResult monitor_result =
        monitor.run(problem, &monitor_stats);
    TokenMachine machine(problem);
    const core::ScheduleResult token_result = machine.run();
    EXPECT_EQ(monitor_result.allocated(), token_result.allocated());
    EXPECT_FALSE(core::verify_schedule(problem, monitor_result).has_value());
    if (!problem.requests.empty()) {
      EXPECT_GT(monitor_stats.total(), 0);
      EXPECT_GT(monitor_stats.transform_instructions, 0);
    }
  }
}

TEST(Monitor, InstructionCountExceedsTokenClocks) {
  // The paper's claim: the distributed realization wins because its cost is
  // clock periods (gate delays) while the monitor executes instructions.
  const topo::Network net = topo::make_omega(8);
  const core::Problem problem =
      core::make_problem(net, {0, 1, 2, 3, 4}, {0, 2, 4, 6, 7});
  Monitor monitor;
  MonitorStats monitor_stats;
  monitor.run(problem, &monitor_stats);
  TokenMachine machine(problem);
  TokenStats token_stats;
  machine.run(&token_stats);
  EXPECT_GT(monitor_stats.total(), token_stats.clock_periods);
}

TEST(TokenScheduler, AdapterBehavesLikeAScheduler) {
  util::Rng rng(60);
  const topo::Network net = topo::make_omega(8);
  TokenScheduler token_scheduler;
  core::MaxFlowScheduler dinic;
  EXPECT_EQ(token_scheduler.name(), "token-machine");
  for (int round = 0; round < 8; ++round) {
    const core::Problem problem =
        rsin::test::random_problem(rng, net, 0.6, 0.6);
    const core::ScheduleResult result = token_scheduler.schedule(problem);
    EXPECT_FALSE(core::verify_schedule(problem, result).has_value());
    EXPECT_EQ(result.allocated(), dinic.schedule(problem).allocated());
    if (!problem.requests.empty() && !problem.free_resources.empty()) {
      EXPECT_GT(result.operations, 0) << "operations = clock periods";
    }
  }
}

TEST(TokenScheduler, WorksThroughBaseClassPointer) {
  const topo::Network net = topo::make_omega(8);
  const core::Problem problem = core::make_problem(net, {0, 1}, {4, 5});
  TokenScheduler concrete;
  core::Scheduler& scheduler = concrete;
  EXPECT_EQ(scheduler.schedule(problem).allocated(), 2u);
}

TEST(StatusBus, VectorRendering) {
  EXPECT_EQ(bus_vector(0), "0000000");
  EXPECT_EQ(bus_vector(kRequestPending | kResourceReady | kRequestTokenPhase),
            "1110000");
  EXPECT_EQ(bus_vector_x(kRequestPending | kResourceReady |
                         kRequestTokenPhase),
            "111000x");
  EXPECT_EQ(bus_vector(kBonded), "0000001");
  EXPECT_EQ(bus_vector(kResourceReached), "0000010");
}

}  // namespace
}  // namespace rsin::token
