// CLI smoke tests for the observability flags: --metrics-out and
// --trace-events must emit JSON the bundled parser accepts, and the flag
// validation must reject the documented misuses.
//
// The rsin_cli binary path arrives via the RSIN_CLI_PATH compile
// definition; sanitizer presets build without examples, so these tests
// skip themselves when the binary is absent.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.hpp"

namespace rsin {
namespace {

#ifdef RSIN_CLI_PATH
constexpr const char* kCliPath = RSIN_CLI_PATH;
#else
constexpr const char* kCliPath = nullptr;
#endif

/// Temp file path unique to the current test; removed on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(std::string(::testing::TempDir()) + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

/// Runs the CLI with `args`; returns its exit code.
int run_cli(const std::string& args) {
  const std::string command =
      std::string(kCliPath) + " " + args + " >/dev/null 2>/dev/null";
  const int status = std::system(command.c_str());
  return status < 0 ? status : WEXITSTATUS(status);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

#define REQUIRE_CLI()                                               \
  do {                                                              \
    if (kCliPath == nullptr) {                                      \
      GTEST_SKIP() << "rsin_cli not built in this configuration";   \
    }                                                               \
  } while (0)

TEST(ObsCli, MetricsOutWritesParseableJson) {
  REQUIRE_CLI();
  TempFile metrics("obs_cli_metrics.json");
  ASSERT_EQ(run_cli("blocking omega 8 dinic 50 0.7 --metrics-out=" +
                    metrics.path),
            0);
  const obs::json::Value doc = obs::json::parse(slurp(metrics.path));
  EXPECT_GT(doc.at("counters").at("flow.solves").number, 0.0);
  EXPECT_GT(doc.at("counters").at("flow.bfs_phases").number, 0.0);
}

TEST(ObsCli, SystemModeEmitsMetricsAndTraceEvents) {
  REQUIRE_CLI();
  TempFile metrics("obs_cli_system_metrics.json");
  TempFile events("obs_cli_system_trace.json");
  ASSERT_EQ(run_cli("system omega 8 warm 0.6 --metrics-out=" + metrics.path +
                    " --trace-events=" + events.path),
            0);
  const obs::json::Value doc = obs::json::parse(slurp(metrics.path));
  EXPECT_GT(doc.at("counters").at("sim.cycles.solved").number, 0.0);
  EXPECT_GT(
      doc.at("histograms").at("sim.cycle.solve_us").at("count").number, 0.0);
  const obs::json::Value trace = obs::json::parse(slurp(events.path));
  ASSERT_TRUE(trace.at("traceEvents").is_array());
  EXPECT_GT(trace.at("traceEvents").array.size(), 0u);
}

TEST(ObsCli, ReplayWithMetricsOutWorks) {
  REQUIRE_CLI();
  TempFile trace("obs_cli_replay.trace");
  TempFile metrics("obs_cli_replay_metrics.json");
  ASSERT_EQ(run_cli("system omega 8 dinic 0.6 --record-trace=" + trace.path),
            0);
  ASSERT_EQ(run_cli("system omega 8 dinic --replay=" + trace.path +
                    " --metrics-out=" + metrics.path),
            0);
  const obs::json::Value doc = obs::json::parse(slurp(metrics.path));
  EXPECT_GT(doc.at("counters").at("sim.cycles.solved").number, 0.0);
}

TEST(ObsCli, RejectsEmptyPathsAndTraceEventsDuringReplay) {
  REQUIRE_CLI();
  EXPECT_NE(run_cli("system omega 8 dinic --metrics-out="), 0);
  EXPECT_NE(run_cli("system omega 8 dinic --trace-events="), 0);
  EXPECT_NE(run_cli("system omega 8 dinic --replay=x.trace "
                    "--trace-events=y.json"),
            0);
}

}  // namespace
}  // namespace rsin
