// Property tests for the scheduler zoo (core/zoo.hpp): every discipline
// must emit realizable schedules on randomized topology x fault x burst
// sweeps, be deterministic under a fixed seed, restart cleanly from
// reset(), and stay within the expected optimality gap of the cold Dinic
// solve. The name-based factory is covered too.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/schedule.hpp"
#include "core/scheduler.hpp"
#include "core/zoo.hpp"
#include "test_helpers.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace rsin {
namespace {

/// Flattens a schedule into its (processor, resource) pairs, in emission
/// order, for cross-instance determinism comparisons.
std::vector<std::pair<topo::ProcessorId, topo::ResourceId>> pairs_of(
    const core::ScheduleResult& result) {
  std::vector<std::pair<topo::ProcessorId, topo::ResourceId>> pairs;
  pairs.reserve(result.assignments.size());
  for (const core::Assignment& a : result.assignments) {
    pairs.emplace_back(a.request.processor, a.resource.resource);
  }
  return pairs;
}

/// The zoo under test, freshly constructed per call site.
std::vector<std::unique_ptr<core::Scheduler>> make_zoo(std::uint64_t seed) {
  std::vector<std::unique_ptr<core::Scheduler>> zoo;
  zoo.push_back(std::make_unique<core::RandomizedMatchScheduler>(
      core::RandomizedMatchConfig{seed, /*pick_and_compare=*/true}));
  zoo.push_back(std::make_unique<core::ThresholdScheduler>());
  zoo.push_back(std::make_unique<core::GreedyLocalScheduler>());
  return zoo;
}

TEST(SchedulerZoo, FeasibilityAcrossTopologyFaultBurstSweep) {
  // Every zoo scheduler must emit a realizable schedule (link-disjoint free
  // circuits, no double-booking, matching types) on every instance of a
  // randomized sweep across topologies, permanent link faults, and request
  // densities from idle to full burst.
  util::Rng rng(2024);
  for (const char* topology : {"omega", "benes", "crossbar"}) {
    const topo::Network base = topo::make_named(topology, 8);
    for (const std::int32_t failed_links : {0, 2, 5}) {
      topo::Network net = base;
      for (std::int32_t f = 0; f < failed_links; ++f) {
        net.fail_link(rng.uniform_int(0, net.link_count() - 1));
      }
      auto zoo = make_zoo(rng());
      for (const double p_request : {0.25, 0.6, 1.0}) {
        for (int round = 0; round < 8; ++round) {
          const core::Problem problem =
              test::random_problem(rng, net, p_request, 0.7);
          for (const auto& scheduler : zoo) {
            const core::ScheduleResult result = scheduler->schedule(problem);
            const auto violation = core::verify_schedule(problem, result);
            EXPECT_FALSE(violation.has_value())
                << scheduler->name() << " on " << topology << " ("
                << failed_links << " failed links, p_request=" << p_request
                << ", round " << round << "): " << *violation;
          }
        }
      }
    }
  }
}

TEST(SchedulerZoo, DeterminismUnderFixedSeed) {
  // Two instances constructed with the same seed and fed the same problem
  // sequence must emit identical assignment sequences — the property the
  // record/replay machinery and the gap benches lean on.
  const topo::Network net = topo::make_named("omega", 8);
  util::Rng problem_rng(7);
  std::vector<core::Problem> problems;
  for (int i = 0; i < 20; ++i) {
    problems.push_back(test::random_problem(problem_rng, net, 0.7, 0.7));
  }
  auto first = make_zoo(99);
  auto second = make_zoo(99);
  for (std::size_t s = 0; s < first.size(); ++s) {
    for (std::size_t i = 0; i < problems.size(); ++i) {
      const core::ScheduleResult a = first[s]->schedule(problems[i]);
      const core::ScheduleResult b = second[s]->schedule(problems[i]);
      EXPECT_EQ(pairs_of(a), pairs_of(b))
          << first[s]->name() << " diverged at cycle " << i;
    }
  }
}

TEST(SchedulerZoo, MatchingsStayWithinTwiceOptimal) {
  // Optimality gap: a maximal matching is at least half a maximum matching,
  // and empirically the bound carries over to link-constrained circuit
  // allocation on these fabrics. Randomized-match and greedy-local are both
  // maximal, so 2x their matched count must cover the cold Dinic optimum on
  // every instance of the (fixed-seed) sweep.
  util::Rng rng(4242);
  for (const char* topology : {"omega", "benes", "crossbar"}) {
    const topo::Network base = topo::make_named(topology, 8);
    for (const std::int32_t failed_links : {0, 3}) {
      topo::Network net = base;
      for (std::int32_t f = 0; f < failed_links; ++f) {
        net.fail_link(rng.uniform_int(0, net.link_count() - 1));
      }
      core::RandomizedMatchScheduler randomized(
          core::RandomizedMatchConfig{rng()});
      core::GreedyLocalScheduler greedy_local;
      core::MaxFlowScheduler dinic;
      for (int round = 0; round < 10; ++round) {
        const core::Problem problem =
            test::random_problem(rng, net, 0.8, 0.8);
        const std::size_t optimal = dinic.schedule(problem).allocated();
        const std::size_t matched =
            randomized.schedule(problem).allocated();
        const std::size_t local = greedy_local.schedule(problem).allocated();
        EXPECT_GE(2 * matched, optimal)
            << "randomized-match on " << topology << " round " << round;
        EXPECT_GE(2 * local, optimal)
            << "greedy-local on " << topology << " round " << round;
      }
    }
  }
}

TEST(SchedulerZoo, ThresholdRespectsPerClassReserve) {
  // With reserve = r, each resource class must keep r free resources
  // unallocated; with reserve = 0 the scheduler is work-conserving and can
  // only do better. Priorities break admission ties within a class.
  const topo::Network net = topo::make_named("crossbar", 8);
  core::Problem problem;
  problem.network = &net;
  for (topo::ProcessorId p = 0; p < net.processor_count(); ++p) {
    problem.requests.push_back({p, /*priority=*/p % 3, /*type=*/p % 2});
  }
  for (topo::ResourceId r = 0; r < net.resource_count(); ++r) {
    problem.free_resources.push_back({r, /*preference=*/0, /*type=*/r % 2});
  }
  problem.validate();

  for (const std::int32_t reserve : {0, 1, 2}) {
    core::ThresholdScheduler scheduler(core::ThresholdConfig{reserve});
    const core::ScheduleResult result = scheduler.schedule(problem);
    ASSERT_FALSE(core::verify_schedule(problem, result).has_value());
    std::map<std::int32_t, std::int64_t> granted;
    for (const core::Assignment& a : result.assignments) {
      ++granted[a.resource.type];
    }
    std::map<std::int32_t, std::int64_t> free_count;
    for (const core::FreeResource& r : problem.free_resources) {
      ++free_count[r.type];
    }
    for (const auto& [type, count] : granted) {
      EXPECT_LE(count, std::max<std::int64_t>(0, free_count[type] - reserve))
          << "class " << type << " overshot its budget at reserve="
          << reserve;
    }
  }

  // reserve=0 admits at least as much as any positive reserve.
  core::ThresholdScheduler conserving(core::ThresholdConfig{0});
  core::ThresholdScheduler reserved(core::ThresholdConfig{2});
  EXPECT_GE(conserving.schedule(problem).allocated(),
            reserved.schedule(problem).allocated());

  // Admission is priority-ordered: when one budget slot remains in a class,
  // the highest-priority request of that class wins it.
  core::Problem contended;
  contended.network = &net;
  contended.requests.push_back({0, /*priority=*/0, /*type=*/0});
  contended.requests.push_back({1, /*priority=*/5, /*type=*/0});
  contended.free_resources.push_back({0, 0, /*type=*/0});
  contended.free_resources.push_back({1, 0, /*type=*/0});
  contended.validate();
  core::ThresholdScheduler tie_breaker(core::ThresholdConfig{1});
  const core::ScheduleResult winner = tie_breaker.schedule(contended);
  ASSERT_EQ(winner.allocated(), 1u);
  EXPECT_EQ(winner.assignments[0].request.processor, 1);
}

TEST(SchedulerZoo, ResetRestartsCleanly) {
  // reset() must return a stateful scheduler to freshly constructed
  // behavior even mid-stream: run a prefix, reset, and the suffix must
  // match what a brand-new instance emits on the same suffix.
  const topo::Network net = topo::make_named("omega", 8);
  util::Rng problem_rng(11);
  std::vector<core::Problem> prefix;
  std::vector<core::Problem> suffix;
  for (int i = 0; i < 6; ++i) {
    prefix.push_back(test::random_problem(problem_rng, net, 0.7, 0.7));
  }
  for (int i = 0; i < 6; ++i) {
    suffix.push_back(test::random_problem(problem_rng, net, 0.7, 0.7));
  }
  auto warmed = make_zoo(5);
  auto fresh = make_zoo(5);
  for (std::size_t s = 0; s < warmed.size(); ++s) {
    for (const core::Problem& problem : prefix) {
      (void)warmed[s]->schedule(problem);
    }
    warmed[s]->reset();
    for (const core::Problem& problem : suffix) {
      EXPECT_EQ(pairs_of(warmed[s]->schedule(problem)),
                pairs_of(fresh[s]->schedule(problem)))
          << warmed[s]->name() << " did not reset to fresh behavior";
    }
  }
}

TEST(SchedulerZoo, RetainedMatchingSurvivesFaultRounds) {
  // Pick-and-compare across rounds where links fail and repair mid-stream:
  // the retained matching must be re-validated against the current network,
  // never producing an infeasible schedule, and its circuits must actually
  // establish on the live network.
  topo::Network net = topo::make_named("benes", 8);
  core::RandomizedMatchScheduler scheduler(core::RandomizedMatchConfig{17});
  util::Rng rng(3);
  for (int round = 0; round < 30; ++round) {
    const topo::LinkId victim =
        static_cast<topo::LinkId>(rng.uniform_int(0, net.link_count() - 1));
    net.fail_link(victim);
    const core::Problem problem = test::random_problem(rng, net, 0.8, 0.8);
    const core::ScheduleResult result = scheduler.schedule(problem);
    const auto violation = core::verify_schedule(problem, result);
    ASSERT_FALSE(violation.has_value())
        << "round " << round << ": " << *violation;
    core::establish_schedule(net, result);
    net.release_all();
    net.repair_link(victim);
  }
  // The retained matching holds (processor, resource) pairs from the last
  // round's winning proposal.
  for (const auto& [processor, resource] : scheduler.retained()) {
    EXPECT_GE(processor, 0);
    EXPECT_GE(resource, 0);
  }
}

TEST(SchedulerZoo, FactoryMakesEveryNamedScheduler) {
  for (const std::string& name : core::scheduler_names()) {
    const std::unique_ptr<core::Scheduler> scheduler =
        core::make_named_scheduler(name, /*seed=*/7);
    ASSERT_NE(scheduler, nullptr) << name;
    EXPECT_FALSE(scheduler->name().empty()) << name;
  }
  // The zoo names resolve to the zoo types, and the advertised list covers
  // them.
  const auto& names = core::scheduler_names();
  for (const char* expected :
       {"randomized-match", "threshold", "greedy-local", "dinic", "greedy"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " missing from scheduler_names()";
  }
  EXPECT_EQ(core::make_named_scheduler("randomized-match")->name(),
            "randomized-match");
  EXPECT_EQ(core::make_named_scheduler("greedy-local")->name(),
            "greedy-local");
  // An unknown name must say what WOULD have worked: the error enumerates
  // every name the factory accepts, so --scheduler=typo is self-diagnosing.
  try {
    core::make_named_scheduler("no-such-discipline");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("no-such-discipline"), std::string::npos);
    for (const std::string& name : core::scheduler_names()) {
      EXPECT_NE(what.find(name), std::string::npos)
          << "factory error must enumerate '" << name << "'";
    }
  }
}

}  // namespace
}  // namespace rsin
