// Asymptotic regression and differential suite for the compact bit-parallel
// Dinic hot path (DESIGN.md §11, EXPERIMENTS.md E23):
//  * per-solve work must not scale with the number of nodes a solve never
//    touches (the epoch-stamp fix for the O(n) per-phase fills);
//  * residual repair through a high-degree hub must not rescan the hub's
//    adjacency from the start for every cancelled unit (the shed-cursor fix);
//  * the bit-parallel solver must be *bitwise* identical to the scalar
//    reference — same value, phases, augmentations, and per-arc flow;
//  * the word-packed frontier must survive exact word boundaries;
//  * the whole path must hold up at million-node scale.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "core/problem.hpp"
#include "core/transform.hpp"
#include "flow/max_flow.hpp"
#include "flow/schedule_context.hpp"
#include "test_helpers.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

// Sanitizer builds run the same logic at reduced scale: the asymptotic
// claims are already pinned by the regular build, and e.g. tsan multiplies
// memory several-fold.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RSIN_DINIC_SCALE_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RSIN_DINIC_SCALE_SANITIZED 1
#endif
#endif

namespace {

using namespace rsin;

/// Per-arc flow assignments (and the run statistics that determine them)
/// must match exactly — "same value" is not enough for the bit-parallel
/// claim.
void expect_bitwise_equal(const flow::MaxFlowResult& got_result,
                          const flow::FlowNetwork& got,
                          const flow::MaxFlowResult& want_result,
                          const flow::FlowNetwork& want,
                          const std::string& context) {
  EXPECT_EQ(got_result.value, want_result.value) << context;
  EXPECT_EQ(got_result.phases, want_result.phases) << context;
  EXPECT_EQ(got_result.augmentations, want_result.augmentations) << context;
  ASSERT_EQ(got.arc_count(), want.arc_count()) << context;
  for (std::size_t a = 0; a < got.arc_count(); ++a) {
    ASSERT_EQ(got.arc(static_cast<flow::ArcId>(a)).flow,
              want.arc(static_cast<flow::ArcId>(a)).flow)
        << context << " arc " << a;
  }
}

// --- epoch-stamp regression (satellite 1) ---------------------------------

/// An identical small active component in front of `tail` isolated nodes.
/// The same seed builds the same component regardless of the tail, so any
/// per-round difference in solver work between tail sizes is work spent on
/// nodes the solve never reaches.
flow::FlowNetwork make_sparse_giant(std::size_t tail) {
  util::Rng rng(20260807);
  flow::FlowNetwork net = test::random_layered_network(
      rng, /*layers=*/4, /*width=*/6, /*density=*/0.7, /*max_cap=*/3);
  for (std::size_t i = 0; i < tail; ++i) net.add_node();
  return net;
}

using RoundRecord = std::tuple<flow::Capacity, std::int64_t, std::int64_t,
                               std::int64_t, std::int64_t>;

std::vector<RoundRecord> drive_sparse_giant(std::size_t tail) {
  flow::FlowNetwork net = make_sparse_giant(tail);
  flow::ScheduleContext ctx;
  util::Rng rng(424242);  // identical mutation stream for every tail size
  std::vector<RoundRecord> records;
  for (int round = 0; round < 15; ++round) {
    if (round > 0) {
      const auto mutations = rng.uniform_int(1, 4);
      for (std::int64_t m = 0; m < mutations; ++m) {
        const auto arc = static_cast<flow::ArcId>(
            rng.uniform_int(0, static_cast<std::int64_t>(net.arc_count()) - 1));
        net.set_capacity(arc,
                         static_cast<flow::Capacity>(rng.uniform_int(0, 3)));
      }
    }
    const flow::MaxFlowResult r = flow::warm_max_flow_dinic(net, ctx);
    records.emplace_back(r.value, r.phases, r.augmentations, r.operations,
                         r.scratch_resets);
  }
  return records;
}

TEST(DinicScale, SolverWorkIsIndependentOfUntouchedNodes) {
  // 10^3 vs 10^5 isolated tail nodes around the same active component. The
  // old hot path did an O(n) std::fill per BFS and an O(n) next_edge refill
  // per phase, so the big tail would have inflated `operations`-adjacent
  // work 100x; with epoch stamps every per-round statistic — including the
  // explicit count of scratch slots touched — must be *equal*.
  const std::vector<RoundRecord> small = drive_sparse_giant(1000);
  const std::vector<RoundRecord> large = drive_sparse_giant(100000);
  ASSERT_EQ(small.size(), large.size());
  for (std::size_t round = 0; round < small.size(); ++round) {
    EXPECT_EQ(small[round], large[round]) << "round " << round;
  }
}

// --- shed-cursor regression (satellite 2) ---------------------------------

TEST(DinicScale, HubRepairDoesNotRescanHubAdjacencyPerUnit) {
#ifdef RSIN_DINIC_SCALE_SANITIZED
  const std::int64_t spokes = 3000;
#else
  const std::int64_t spokes = 60000;
#endif
  // Star: s -> a_i -> h -> b_i -> t, all unit capacity. Every flow unit
  // passes through hub h, whose residual adjacency has 2*spokes edges.
  flow::FlowNetwork net;
  const flow::NodeId s = net.add_node("s");
  const flow::NodeId t = net.add_node("t");
  const flow::NodeId h = net.add_node("h");
  net.set_source(s);
  net.set_sink(t);
  std::vector<flow::ArcId> hub_out;
  hub_out.reserve(static_cast<std::size_t>(spokes));
  for (std::int64_t i = 0; i < spokes; ++i) {
    const flow::NodeId a = net.add_node();
    const flow::NodeId b = net.add_node();
    net.add_arc(s, a, 1);
    net.add_arc(a, h, 1);
    hub_out.push_back(net.add_arc(h, b, 1));
    net.add_arc(b, t, 1);
  }

  flow::ScheduleContext ctx;
  ASSERT_EQ(flow::warm_max_flow_dinic(net, ctx).value, spokes);

  // Kill every other hub->b_i arc that carries flow. sync_capacities must
  // shed spokes/2 units, each via a backward walk from h; without the
  // per-node cursor each walk rescans the hub's already-drained edges from
  // index 0 — O(spokes^2) inspections, minutes at this size.
  for (std::size_t i = 0; i < hub_out.size(); i += 2) {
    net.set_capacity(hub_out[i], 0);
  }
  const flow::MaxFlowResult warm = flow::warm_max_flow_dinic(net, ctx);
  EXPECT_EQ(warm.value, spokes / 2);
  EXPECT_EQ(ctx.stats.repair_cancelled, spokes / 2);

  flow::FlowNetwork cold = net;
  cold.clear_flow();
  EXPECT_EQ(flow::max_flow_dinic(cold).value, spokes / 2);
}

// --- differential property suite (satellite 4) ----------------------------

TEST(DinicScale, ColdContextBitwiseMatchesScalarOnRandomNetworks) {
  util::Rng rng(20260806);
  flow::ScheduleContext ctx;  // reused: stale scratch must never leak through
  for (int instance = 0; instance < 40; ++instance) {
    flow::FlowNetwork net = test::random_layered_network(
        rng, static_cast<int>(rng.uniform_int(1, 5)),
        static_cast<int>(rng.uniform_int(2, 7)), 0.6, 4);
    flow::FlowNetwork reference = net;
    ctx.invalidate();
    const flow::MaxFlowResult got = flow::max_flow_dinic(net, ctx);
    const flow::MaxFlowResult want = flow::max_flow_dinic(reference);
    expect_bitwise_equal(got, net, want, reference,
                         "instance " + std::to_string(instance));
  }
}

TEST(DinicScale, TransformedTopologiesBitwiseMatchScalarUnderFaults) {
  std::vector<topo::Network> fabrics;
  fabrics.push_back(topo::make_omega(16));
  fabrics.push_back(topo::make_butterfly(16));
  fabrics.push_back(topo::make_clos(4, 5, 4));
  util::Rng rng(20260808);
  flow::ScheduleContext ctx;
  for (std::size_t f = 0; f < fabrics.size(); ++f) {
    topo::Network& fabric = fabrics[f];
    for (int round = 0; round < 15; ++round) {
      if (rng.bernoulli(0.4)) {
        const auto link = static_cast<topo::LinkId>(
            rng.uniform_int(0, fabric.link_count() - 1));
        if (fabric.link_failed(link)) {
          fabric.repair_link(link);
        } else {
          fabric.fail_link(link);
        }
      }
      const core::Problem problem =
          test::random_problem(rng, fabric, 0.6, 0.6);
      core::TransformResult bitpar = core::transformation1(problem);
      core::TransformResult scalar = core::transformation1(problem);
      ctx.invalidate();
      const flow::MaxFlowResult got = flow::max_flow_dinic(bitpar.net, ctx);
      const flow::MaxFlowResult want = flow::max_flow_dinic(scalar.net);
      expect_bitwise_equal(got, bitpar.net, want, scalar.net,
                           "fabric " + std::to_string(f) + " round " +
                               std::to_string(round));
    }
  }
}

TEST(DinicScale, WarmPersistentTransformMatchesScalarValueUnderFaults) {
  topo::Network fabric = topo::make_omega(16);
  core::PersistentTransform persistent;
  persistent.build(fabric);
  flow::ScheduleContext ctx;
  util::Rng rng(20260809);
  for (int round = 0; round < 40; ++round) {
    if (rng.bernoulli(0.3)) {
      const auto link = static_cast<topo::LinkId>(
          rng.uniform_int(0, fabric.link_count() - 1));
      if (fabric.link_failed(link)) {
        fabric.repair_link(link);
      } else {
        fabric.fail_link(link);
      }
    }
    const core::Problem problem = test::random_problem(rng, fabric, 0.5, 0.5);
    persistent.update(problem);
    const flow::Capacity warm =
        flow::warm_max_flow_dinic(persistent.result().net, ctx).value;
    core::TransformResult cold = core::transformation1(problem);
    EXPECT_EQ(warm, flow::max_flow_dinic(cold.net).value)
        << "round " << round;
  }
  EXPECT_GT(ctx.stats.warm_cycles, 0);
}

TEST(DinicScale, WordBoundaryNodeCounts) {
  // Exactly 63 / 64 / 65 nodes: the frontier bit sets must handle a full
  // top word, an exactly-full word, and one bit spilling into a new word.
  util::Rng rng(63646565);
  flow::ScheduleContext ctx;
  for (const int nodes : {63, 64, 65}) {
    for (int instance = 0; instance < 10; ++instance) {
      flow::FlowNetwork net = test::random_layered_network(
          rng, /*layers=*/1, /*width=*/nodes - 2, 0.2, 3);
      ASSERT_EQ(net.node_count(), static_cast<std::size_t>(nodes));
      flow::FlowNetwork reference = net;
      ctx.invalidate();
      const flow::MaxFlowResult got = flow::max_flow_dinic(net, ctx);
      const flow::MaxFlowResult want = flow::max_flow_dinic(reference);
      expect_bitwise_equal(got, net, want, reference,
                           "n=" + std::to_string(nodes) + " instance " +
                               std::to_string(instance));
    }
  }
}

// --- million-node smoke (satellite 4, ctest-tagged) -----------------------

TEST(DinicScale, MillionNodeSmoke) {
#ifdef RSIN_DINIC_SCALE_SANITIZED
  const std::int32_t n = 1 << 9;
#else
  const std::int32_t n = 1 << 17;  // ~1.4M flow nodes after transformation1
#endif
  const topo::Network fabric = topo::make_omega(n);
  std::vector<topo::ProcessorId> requesting(static_cast<std::size_t>(n));
  std::vector<topo::ResourceId> available(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    requesting[static_cast<std::size_t>(i)] = i;
    available[static_cast<std::size_t>(i)] = i;
  }
  const core::Problem problem =
      core::make_problem(fabric, requesting, available);
  core::TransformResult transformed = core::transformation1(problem);
#ifndef RSIN_DINIC_SCALE_SANITIZED
  ASSERT_GE(transformed.net.node_count(), 1'000'000u);
#endif

  flow::FlowNetwork scalar_net = transformed.net;
  flow::ScheduleContext ctx;
  const flow::MaxFlowResult got = flow::max_flow_dinic(transformed.net, ctx);
  // Omega routes the identity permutation, so at full load the fabric
  // saturates: one unit per processor.
  EXPECT_EQ(got.value, n);
  const flow::MaxFlowResult want = flow::max_flow_dinic(scalar_net);
  expect_bitwise_equal(got, transformed.net, want, scalar_net, "cold solve");

  // Warm repair at scale: withdrawing k requests (source-arc capacity -> 0)
  // sheds exactly those k unit paths and leaves an (n-k)-valued maximum.
  const std::int32_t withdrawn = n / 64;
  std::int32_t dropped = 0;
  for (const flow::ArcId arc :
       transformed.net.out_arcs(transformed.net.source())) {
    if (dropped >= withdrawn) break;
    transformed.net.set_capacity(arc, 0);
    ++dropped;
  }
  const flow::MaxFlowResult warm =
      flow::warm_max_flow_dinic(transformed.net, ctx);
  EXPECT_EQ(warm.value, n - withdrawn);
  EXPECT_EQ(ctx.stats.repair_cancelled, withdrawn);
}

}  // namespace
