// Property tests for the inter-cluster admission layer (fed/admission.hpp):
// coflow-style grants must always be feasible against the uplink mesh,
// deterministic, and within the maximal-matching factor (>= 1/2) of the
// exact transportation optimum; partition must sever exactly the
// partitioned cluster's uplinks and heal must restore them.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fed/admission.hpp"
#include "util/rng.hpp"

namespace rsin {
namespace {

struct Instance {
  fed::UplinkGraph uplinks;
  std::vector<std::int64_t> demand;
  std::vector<std::int64_t> slots;
};

Instance random_instance(util::Rng& rng) {
  const auto k = static_cast<std::int32_t>(rng.uniform_int(2, 6));
  Instance instance{fed::UplinkGraph(k, 0), {}, {}};
  for (std::int32_t i = 0; i < k; ++i) {
    for (std::int32_t j = 0; j < k; ++j) {
      if (i != j) {
        instance.uplinks.set_capacity(i, j, rng.uniform_int(0, 5));
      }
    }
    instance.demand.push_back(rng.uniform_int(0, 12));
    instance.slots.push_back(rng.uniform_int(0, 8));
  }
  return instance;
}

TEST(FedAdmission, GrantsAreAlwaysFeasible) {
  util::Rng rng(0xfeedULL);
  for (int round = 0; round < 300; ++round) {
    const Instance instance = random_instance(rng);
    const auto k = static_cast<std::size_t>(instance.uplinks.clusters());
    const fed::AdmissionResult result =
        admit_coflow(instance.uplinks, instance.demand, instance.slots);

    std::vector<std::int64_t> out(k, 0);
    std::vector<std::int64_t> in(k, 0);
    std::vector<std::int64_t> pair(k * k, 0);
    std::int64_t total = 0;
    for (const fed::SpillGrant& grant : result.grants) {
      ASSERT_GT(grant.count, 0);
      ASSERT_NE(grant.src, grant.dst);
      out[static_cast<std::size_t>(grant.src)] += grant.count;
      in[static_cast<std::size_t>(grant.dst)] += grant.count;
      pair[static_cast<std::size_t>(grant.src) * k +
           static_cast<std::size_t>(grant.dst)] += grant.count;
      total += grant.count;
    }
    EXPECT_EQ(total, result.admitted);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_LE(out[i], instance.demand[i]) << "source over-drained";
      EXPECT_LE(in[i], instance.slots[i]) << "destination over-filled";
      for (std::size_t j = 0; j < k; ++j) {
        EXPECT_LE(pair[i * k + j],
                  instance.uplinks.capacity(static_cast<std::int32_t>(i),
                                            static_cast<std::int32_t>(j)))
            << "uplink over-committed";
      }
    }
  }
}

TEST(FedAdmission, StaysWithinHalfOfExactOptimum) {
  util::Rng rng(0xabcdULL);
  for (int round = 0; round < 300; ++round) {
    const Instance instance = random_instance(rng);
    const fed::AdmissionResult approx =
        admit_coflow(instance.uplinks, instance.demand, instance.slots);
    const std::int64_t exact =
        admit_exact(instance.uplinks, instance.demand, instance.slots);
    EXPECT_LE(approx.admitted, exact);
    EXPECT_GE(2 * approx.admitted, exact)
        << "maximal grant fell below half the optimum";
  }
}

TEST(FedAdmission, DeterministicAcrossCalls) {
  util::Rng rng(0x5151ULL);
  for (int round = 0; round < 50; ++round) {
    const Instance instance = random_instance(rng);
    const fed::AdmissionResult a =
        admit_coflow(instance.uplinks, instance.demand, instance.slots);
    const fed::AdmissionResult b =
        admit_coflow(instance.uplinks, instance.demand, instance.slots);
    ASSERT_EQ(a.grants.size(), b.grants.size());
    for (std::size_t i = 0; i < a.grants.size(); ++i) {
      EXPECT_EQ(a.grants[i].src, b.grants[i].src);
      EXPECT_EQ(a.grants[i].dst, b.grants[i].dst);
      EXPECT_EQ(a.grants[i].count, b.grants[i].count);
    }
  }
}

TEST(FedAdmission, ExactOptimumOnHandComputedInstance) {
  // 3 clusters: cluster 0 wants to spill 5, uplinks 0->1 cap 2, 0->2 cap 4,
  // slots 1 and 3 respectively: optimum = min(2,1) + min(4,3) = 4.
  fed::UplinkGraph uplinks(3, 0);
  uplinks.set_capacity(0, 1, 2);
  uplinks.set_capacity(0, 2, 4);
  const std::vector<std::int64_t> demand = {5, 0, 0};
  const std::vector<std::int64_t> slots = {0, 1, 3};
  EXPECT_EQ(admit_exact(uplinks, demand, slots), 4);
  const fed::AdmissionResult approx = admit_coflow(uplinks, demand, slots);
  EXPECT_EQ(approx.admitted, 4);  // single source: greedy is exact here
  EXPECT_EQ(approx.demand, 5);
}

TEST(FedAdmission, PartitionSeversAndHealRestoresUplinks) {
  fed::UplinkGraph uplinks(3, 4);
  EXPECT_EQ(uplinks.capacity(0, 1), 4);
  EXPECT_EQ(uplinks.capacity(2, 0), 4);
  uplinks.partition(0);
  EXPECT_TRUE(uplinks.partitioned(0));
  EXPECT_EQ(uplinks.capacity(0, 1), 0);
  EXPECT_EQ(uplinks.capacity(2, 0), 0);
  EXPECT_EQ(uplinks.capacity(1, 2), 4) << "unrelated pair must stay up";
  // Nothing is admitted from or into the partitioned cluster.
  const fed::AdmissionResult result =
      admit_coflow(uplinks, {6, 6, 0}, {0, 0, 6});
  for (const fed::SpillGrant& grant : result.grants) {
    EXPECT_NE(grant.src, 0);
    EXPECT_NE(grant.dst, 0);
  }
  uplinks.heal(0);
  EXPECT_FALSE(uplinks.partitioned(0));
  EXPECT_EQ(uplinks.capacity(0, 1), 4) << "heal must restore configured caps";
}

TEST(FedAdmission, ValidatesInstanceShape) {
  fed::UplinkGraph uplinks(2, 1);
  EXPECT_THROW(uplinks.set_capacity(0, 0, 1), std::invalid_argument);
  EXPECT_THROW(uplinks.set_capacity(0, 5, 1), std::invalid_argument);
  EXPECT_THROW(uplinks.set_capacity(0, 1, -1), std::invalid_argument);
  EXPECT_THROW(admit_coflow(uplinks, {1}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(admit_coflow(uplinks, {1, -1}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(fed::UplinkGraph(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace rsin
