// Compile-and-link check for the aggregate public header: every public
// module must be includable together, and one symbol from each layer must
// resolve. Guards against header rot (missing includes, ODR clashes).
#include "rsin.hpp"

#include <gtest/gtest.h>

namespace rsin {
namespace {

TEST(Umbrella, EveryLayerIsUsableTogether) {
  util::Rng rng(1);
  EXPECT_EQ(util::binomial(4, 2).value(), 6u);

  const topo::Network net = topo::make_omega(8);
  const core::Problem problem = core::make_problem(net, {0, 1}, {5, 6});

  core::MaxFlowScheduler max_flow;
  const core::ScheduleResult schedule = max_flow.schedule(problem);
  EXPECT_EQ(schedule.allocated(), 2u);

  token::TokenScheduler token_scheduler;
  EXPECT_EQ(token_scheduler.schedule(problem).allocated(), 2u);

  const token::HardwareCost hardware = token::estimate_hardware(net);
  EXPECT_GT(hardware.gates, 0);

  EXPECT_GT(sim::banyan_blocking(0.5, 3), 0.0);

  lp::LinearProgram lp_program;
  lp_program.add_variable(1.0);
  EXPECT_EQ(lp::solve(lp_program).status, lp::SolveStatus::kUnbounded);

  flow::BipartiteGraph graph(2, 2);
  graph.add_edge(0, 0);
  EXPECT_EQ(flow::hopcroft_karp(graph).size, 1);
}

}  // namespace
}  // namespace rsin
