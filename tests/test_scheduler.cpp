#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "topo/builders.hpp"

namespace rsin::core {
namespace {

TEST(MaxFlowScheduler, AllocatesEverythingOnFreeCrossbar) {
  const topo::Network net = topo::make_crossbar(6, 6);
  const Problem problem = make_problem(net, {0, 1, 2, 3}, {0, 2, 4, 5});
  MaxFlowScheduler scheduler;
  const ScheduleResult result = scheduler.schedule(problem);
  EXPECT_EQ(result.allocated(), 4u);
  EXPECT_FALSE(verify_schedule(problem, result).has_value());
}

TEST(MaxFlowScheduler, AllAlgorithmsProduceSameCount) {
  util::Rng rng(5);
  const topo::Network net = topo::make_omega(8);
  for (int round = 0; round < 10; ++round) {
    const Problem problem = rsin::test::random_problem(rng, net, 0.6, 0.6);
    std::size_t counts[3];
    int i = 0;
    for (const auto algorithm :
         {flow::MaxFlowAlgorithm::kFordFulkerson,
          flow::MaxFlowAlgorithm::kEdmondsKarp,
          flow::MaxFlowAlgorithm::kDinic}) {
      MaxFlowScheduler scheduler(algorithm);
      const ScheduleResult result = scheduler.schedule(problem);
      EXPECT_FALSE(verify_schedule(problem, result).has_value());
      counts[i++] = result.allocated();
    }
    EXPECT_EQ(counts[0], counts[1]);
    EXPECT_EQ(counts[1], counts[2]);
  }
}

TEST(MaxFlowScheduler, NamesIdentifyAlgorithm) {
  EXPECT_EQ(MaxFlowScheduler(flow::MaxFlowAlgorithm::kDinic).name(),
            "max-flow(dinic)");
  EXPECT_EQ(
      MaxFlowScheduler(flow::MaxFlowAlgorithm::kFordFulkerson).name(),
      "max-flow(ford-fulkerson)");
}

TEST(GreedyScheduler, ProducesRealizableSchedules) {
  util::Rng rng(6);
  const topo::Network net = topo::make_omega(8);
  GreedyScheduler scheduler;
  for (int round = 0; round < 10; ++round) {
    const Problem problem = rsin::test::random_problem(rng, net, 0.7, 0.7);
    const ScheduleResult result = scheduler.schedule(problem);
    EXPECT_FALSE(verify_schedule(problem, result).has_value());
  }
}

TEST(GreedyScheduler, NeverBeatsMaxFlow) {
  util::Rng rng(7);
  const topo::Network net = topo::make_omega(8);
  GreedyScheduler greedy;
  MaxFlowScheduler optimal;
  for (int round = 0; round < 30; ++round) {
    const Problem problem = rsin::test::random_problem(rng, net, 0.7, 0.7);
    EXPECT_LE(greedy.schedule(problem).allocated(),
              optimal.schedule(problem).allocated());
  }
}

TEST(GreedyScheduler, CanBeStrictlySuboptimal) {
  // Sweep until we find an instance where greedy loses — the paper's whole
  // premise. On an 8x8 Omega with moderate load this happens quickly.
  util::Rng rng(8);
  const topo::Network net = topo::make_omega(8);
  GreedyScheduler greedy;
  MaxFlowScheduler optimal;
  bool found = false;
  for (int round = 0; round < 200 && !found; ++round) {
    const Problem problem = rsin::test::random_problem(rng, net, 0.8, 0.8);
    if (greedy.schedule(problem).allocated() <
        optimal.schedule(problem).allocated()) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "greedy should lose on some instance";
}

TEST(RandomScheduler, ProducesRealizableSchedules) {
  util::Rng rng(9);
  const topo::Network net = topo::make_omega(8);
  RandomScheduler scheduler(util::Rng(42));
  for (int round = 0; round < 10; ++round) {
    const Problem problem = rsin::test::random_problem(rng, net, 0.7, 0.7);
    const ScheduleResult result = scheduler.schedule(problem);
    EXPECT_FALSE(verify_schedule(problem, result).has_value());
  }
}

TEST(RandomScheduler, WorseOrEqualToGreedyOnAverage) {
  util::Rng rng(10);
  const topo::Network net = topo::make_omega(8);
  RandomScheduler random_sched(util::Rng(43));
  GreedyScheduler greedy;
  std::int64_t random_total = 0;
  std::int64_t greedy_total = 0;
  for (int round = 0; round < 60; ++round) {
    const Problem problem = rsin::test::random_problem(rng, net, 0.7, 0.7);
    random_total += static_cast<std::int64_t>(
        random_sched.schedule(problem).allocated());
    greedy_total +=
        static_cast<std::int64_t>(greedy.schedule(problem).allocated());
  }
  EXPECT_LE(random_total, greedy_total)
      << "address mapping without rerouting loses to first-fit routing";
}

TEST(ExhaustiveScheduler, MatchesMaxFlowOnSmallInstances) {
  util::Rng rng(11);
  const topo::Network net = topo::make_omega(4);
  ExhaustiveScheduler exhaustive;
  MaxFlowScheduler optimal;
  for (int round = 0; round < 20; ++round) {
    const Problem problem = rsin::test::random_problem(rng, net, 0.7, 0.7);
    const ScheduleResult ground_truth = exhaustive.schedule(problem);
    const ScheduleResult flow_result = optimal.schedule(problem);
    EXPECT_FALSE(verify_schedule(problem, ground_truth).has_value());
    EXPECT_EQ(flow_result.allocated(), ground_truth.allocated())
        << "Theorem 2: max-flow equals the exhaustive optimum";
  }
}

TEST(ExhaustiveScheduler, WorkLimitFires) {
  const topo::Network net = topo::make_omega(8);
  const Problem problem =
      make_problem(net, {0, 1, 2, 3, 4, 5, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7});
  ExhaustiveScheduler tiny_budget(/*work_limit=*/100);
  EXPECT_THROW(tiny_budget.schedule(problem), std::runtime_error);
}

TEST(MinCostScheduler, AllAlgorithmsAgreeOnCost) {
  util::Rng rng(12);
  const topo::Network base = topo::make_omega(8);
  for (int round = 0; round < 10; ++round) {
    Problem problem;
    problem.network = &base;
    for (topo::ProcessorId p = 0; p < 8; ++p) {
      if (rng.bernoulli(0.6)) {
        problem.requests.push_back(
            {p, static_cast<std::int32_t>(rng.uniform_int(1, 10)), 0});
      }
    }
    for (topo::ResourceId r = 0; r < 8; ++r) {
      if (rng.bernoulli(0.6)) {
        problem.free_resources.push_back(
            {r, static_cast<std::int32_t>(rng.uniform_int(1, 10)), 0});
      }
    }
    if (problem.requests.empty() || problem.free_resources.empty()) continue;

    // Under the paper's exact cost function the flow objective is neutral
    // to *which* requests are allocated, so equally-optimal flows can have
    // different schedule_cost values; the priority-weighted mode makes the
    // flow objective determine schedule_cost uniquely, so all three
    // min-cost algorithms must then agree exactly.
    std::int64_t costs[4];
    std::size_t counts[4];
    int i = 0;
    for (const auto algorithm :
         {flow::MinCostFlowAlgorithm::kSsp,
          flow::MinCostFlowAlgorithm::kCycleCancel,
          flow::MinCostFlowAlgorithm::kOutOfKilter,
          flow::MinCostFlowAlgorithm::kNetworkSimplex}) {
      MinCostScheduler scheduler(algorithm, BypassCostMode::kPriorityWeighted);
      const ScheduleResult result = scheduler.schedule(problem);
      EXPECT_FALSE(verify_schedule(problem, result).has_value());
      costs[i] = result.cost;
      counts[i] = result.allocated();
      ++i;
    }
    for (int j = 1; j < 4; ++j) {
      EXPECT_EQ(counts[0], counts[j]);
      EXPECT_EQ(costs[0], costs[j]);
    }
  }
}

TEST(MinCostScheduler, CountMatchesMaxFlow) {
  // Theorem 3's count-first property: the min-cost schedule allocates as
  // many resources as the pure max-flow schedule.
  util::Rng rng(13);
  const topo::Network net = topo::make_omega(8);
  MaxFlowScheduler max_flow;
  MinCostScheduler min_cost;
  for (int round = 0; round < 15; ++round) {
    Problem problem = rsin::test::random_problem(rng, net, 0.7, 0.7);
    for (auto& request : problem.requests) {
      request.priority = static_cast<std::int32_t>(rng.uniform_int(1, 10));
    }
    for (auto& resource : problem.free_resources) {
      resource.preference = static_cast<std::int32_t>(rng.uniform_int(1, 10));
    }
    EXPECT_EQ(min_cost.schedule(problem).allocated(),
              max_flow.schedule(problem).allocated());
  }
}

TEST(MinCostScheduler, CostIsOptimalAgainstExhaustive) {
  // On 4x4 instances compare against exhaustive search (count first, then
  // minimal cost). The paper's exact bypass cost leaves priorities
  // cost-neutral (every source arc is saturated regardless), so this
  // comparison uses the priority-weighted extension, whose flow objective
  // equals schedule_cost among count-optimal schedules.
  util::Rng rng(14);
  const topo::Network net = topo::make_omega(4);
  MinCostScheduler min_cost(flow::MinCostFlowAlgorithm::kSsp,
                            BypassCostMode::kPriorityWeighted);
  ExhaustiveScheduler exhaustive;
  for (int round = 0; round < 15; ++round) {
    Problem problem = rsin::test::random_problem(rng, net, 0.7, 0.7);
    for (auto& request : problem.requests) {
      request.priority = static_cast<std::int32_t>(rng.uniform_int(1, 10));
    }
    for (auto& resource : problem.free_resources) {
      resource.preference = static_cast<std::int32_t>(rng.uniform_int(1, 10));
    }
    const ScheduleResult truth = exhaustive.schedule(problem);
    const ScheduleResult result = min_cost.schedule(problem);
    EXPECT_EQ(result.allocated(), truth.allocated());
    if (result.allocated() == truth.allocated()) {
      EXPECT_EQ(result.cost, truth.cost)
          << "min-cost flow must reach the exhaustive minimum cost";
    }
  }
}

TEST(VerifySchedule, CatchesForgedAssignments) {
  const topo::Network net = topo::make_omega(8);
  const Problem problem = make_problem(net, {0}, {3});
  MaxFlowScheduler scheduler;
  ScheduleResult result = scheduler.schedule(problem);
  ASSERT_EQ(result.allocated(), 1u);

  // Tamper: claim a different resource.
  ScheduleResult forged = result;
  forged.assignments[0].resource.resource = 4;
  EXPECT_TRUE(verify_schedule(problem, forged).has_value());

  // Tamper: break the circuit.
  ScheduleResult broken = result;
  broken.assignments[0].circuit.links.pop_back();
  EXPECT_TRUE(verify_schedule(problem, broken).has_value());

  // Tamper: duplicate the assignment.
  ScheduleResult doubled = result;
  doubled.assignments.push_back(doubled.assignments[0]);
  EXPECT_TRUE(verify_schedule(problem, doubled).has_value());
}

TEST(ScheduleResult, LookupHelpers) {
  const topo::Network net = topo::make_omega(8);
  const Problem problem = make_problem(net, {2, 5}, {1, 6});
  MaxFlowScheduler scheduler;
  const ScheduleResult result = scheduler.schedule(problem);
  ASSERT_EQ(result.allocated(), 2u);
  EXPECT_TRUE(result.processor_allocated(2));
  EXPECT_TRUE(result.processor_allocated(5));
  EXPECT_FALSE(result.processor_allocated(0));
  EXPECT_NE(result.resource_of(2), topo::kInvalidId);
  EXPECT_EQ(result.resource_of(7), topo::kInvalidId);
}

}  // namespace
}  // namespace rsin::core
