// Warm-start scheduling hot path: warm_max_flow_dinic / ScheduleContext /
// PersistentTransform / WarmMaxFlowScheduler must agree with the cold
// solvers under every mutation a scheduling loop applies — capacity edits
// at the flow layer; arrivals, releases, and faults at the scheduler layer.
#include <gtest/gtest.h>

#include <vector>

#include "core/schedule.hpp"
#include "core/scheduler.hpp"
#include "flow/max_flow.hpp"
#include "flow/schedule_context.hpp"
#include "test_helpers.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace {

using namespace rsin;

// --- flow layer -----------------------------------------------------------

TEST(WarmStartFlow, MutationSweepMatchesColdDinicAndEdmondsKarp) {
  util::Rng rng(20260805);
  for (int instance = 0; instance < 20; ++instance) {
    flow::FlowNetwork net = test::random_layered_network(
        rng, /*layers=*/3, /*width=*/5, /*density=*/0.6, /*max_cap=*/4);
    if (net.arc_count() == 0) continue;
    flow::ScheduleContext ctx;
    for (int round = 0; round < 25; ++round) {
      if (round > 0) {
        const auto mutations = rng.uniform_int(1, 4);
        for (std::int64_t m = 0; m < mutations; ++m) {
          const auto arc = static_cast<flow::ArcId>(
              rng.uniform_int(0, static_cast<std::int64_t>(net.arc_count()) - 1));
          net.set_capacity(arc,
                           static_cast<flow::Capacity>(rng.uniform_int(0, 4)));
        }
      }
      const flow::Capacity warm = flow::warm_max_flow_dinic(net, ctx).value;
      flow::FlowNetwork cold_dinic = net;
      cold_dinic.clear_flow();
      flow::FlowNetwork cold_ek = net;
      cold_ek.clear_flow();
      EXPECT_EQ(warm, flow::max_flow_dinic(cold_dinic).value)
          << "instance " << instance << " round " << round;
      EXPECT_EQ(warm, flow::max_flow_edmonds_karp(cold_ek).value)
          << "instance " << instance << " round " << round;
    }
  }
}

TEST(WarmStartFlow, ContextDinicMatchesPlainDinic) {
  util::Rng rng(7);
  flow::ScheduleContext ctx;  // reused across instances: buffers just resize
  for (int instance = 0; instance < 25; ++instance) {
    flow::FlowNetwork net = test::random_layered_network(
        rng, static_cast<int>(rng.uniform_int(1, 4)),
        static_cast<int>(rng.uniform_int(2, 6)), 0.7, 5);
    flow::FlowNetwork reference = net;
    ctx.invalidate();
    EXPECT_EQ(flow::max_flow_dinic(net, ctx).value,
              flow::max_flow_dinic(reference).value)
        << "instance " << instance;
  }
}

TEST(WarmStartFlow, RetainsFullFlowWhenNothingChanged) {
  util::Rng rng(99);
  flow::FlowNetwork net =
      test::random_layered_network(rng, 3, 4, /*density=*/0.9, 3);
  flow::ScheduleContext ctx;
  const flow::MaxFlowResult first = flow::warm_max_flow_dinic(net, ctx);
  ASSERT_GT(first.value, 0);
  const flow::MaxFlowResult second = flow::warm_max_flow_dinic(net, ctx);
  EXPECT_EQ(second.value, first.value);
  EXPECT_EQ(ctx.stats.retained_flow, first.value);  // nothing was repaired
  EXPECT_EQ(second.augmentations, 0);  // the retained flow was already max
  EXPECT_EQ(ctx.stats.warm_cycles, 1);
  EXPECT_EQ(ctx.stats.cold_rebuilds, 1);
}

// --- scheduler layer ------------------------------------------------------

/// Drives warm and cold schedulers through the same DES-style cycle stream:
/// random request/free snapshots, circuit establishment and release between
/// cycles, and occasional link fail/repair. The warm scheduler runs with the
/// differential check on, so any warm/cold value divergence throws.
TEST(WarmStartScheduler, AgreesWithColdSchedulerUnderDesStyleMutations) {
  topo::Network net = topo::make_named("omega", 8);
  core::WarmMaxFlowScheduler warm(/*verify=*/true);
  core::MaxFlowScheduler cold;
  util::Rng rng(42);
  for (int cycle = 0; cycle < 200; ++cycle) {
    const core::Problem problem = test::random_problem(rng, net, 0.5, 0.5);
    const core::ScheduleResult warm_result = warm.schedule(problem);
    const core::ScheduleResult cold_result = cold.schedule(problem);
    EXPECT_EQ(warm_result.allocated(), cold_result.allocated())
        << "cycle " << cycle;
    const auto error = core::verify_schedule(problem, warm_result);
    EXPECT_FALSE(error.has_value()) << error.value_or("");

    // Arrivals: establish some of the granted circuits.
    for (const core::Assignment& a : warm_result.assignments) {
      if (net.established_circuit(a.request.processor) == nullptr &&
          rng.bernoulli(0.5)) {
        net.establish(a.circuit);
      }
    }
    // Releases: tear down some established circuits.
    for (topo::ProcessorId p = 0; p < net.processor_count(); ++p) {
      if (const topo::Circuit* held = net.established_circuit(p);
          held != nullptr && rng.bernoulli(0.3)) {
        const topo::Circuit copy = *held;
        net.release(copy);
      }
    }
    // Faults: occasionally flip one link's hardware state.
    if (rng.bernoulli(0.2)) {
      const auto link =
          static_cast<topo::LinkId>(rng.uniform_int(0, net.link_count() - 1));
      if (net.link_failed(link)) {
        net.repair_link(link);
      } else {
        net.fail_link(link);
      }
    }
  }
  EXPECT_GT(warm.warm_stats().warm_cycles, 0);
  EXPECT_EQ(warm.warm_stats().cold_rebuilds, 1);
}

TEST(WarmStartScheduler, ResetForcesColdRebuild) {
  const topo::Network net = topo::make_named("omega", 8);
  core::WarmMaxFlowScheduler warm(/*verify=*/true);
  util::Rng rng(5);
  for (int cycle = 0; cycle < 3; ++cycle) {
    warm.schedule(test::random_problem(rng, net, 0.6, 0.6));
  }
  EXPECT_EQ(warm.warm_stats().cold_rebuilds, 1);
  warm.reset();
  warm.schedule(test::random_problem(rng, net, 0.6, 0.6));
  EXPECT_EQ(warm.warm_stats().cold_rebuilds, 2);
}

// --- canonical mode (E17b) ------------------------------------------------

/// Canonical mode trades the warm-start speedup for bitwise reproducibility:
/// every cycle cold-solves on the persistent skeleton, whose arcs are laid
/// out in the same relative order transformation1 would emit, so the Dinic
/// augmentation sequence — and therefore every assignment — is identical to
/// MaxFlowScheduler(kDinic).
TEST(WarmStartCanonical, AssignmentsBitwiseMatchColdDinic) {
  topo::Network net = topo::make_named("omega", 8);
  core::WarmMaxFlowScheduler canonical(/*verify=*/true, /*canonical=*/true);
  core::MaxFlowScheduler cold(flow::MaxFlowAlgorithm::kDinic);
  util::Rng rng(42);
  for (int cycle = 0; cycle < 200; ++cycle) {
    const core::Problem problem = test::random_problem(rng, net, 0.5, 0.5);
    const core::ScheduleResult a = canonical.schedule(problem);
    const core::ScheduleResult b = cold.schedule(problem);
    ASSERT_EQ(a.assignments.size(), b.assignments.size())
        << "cycle " << cycle;
    for (std::size_t i = 0; i < a.assignments.size(); ++i) {
      EXPECT_EQ(a.assignments[i].request.processor,
                b.assignments[i].request.processor)
          << "cycle " << cycle << " assignment " << i;
      EXPECT_EQ(a.assignments[i].resource.resource,
                b.assignments[i].resource.resource)
          << "cycle " << cycle << " assignment " << i;
      EXPECT_EQ(a.assignments[i].circuit.links, b.assignments[i].circuit.links)
          << "cycle " << cycle << " assignment " << i;
    }

    // Same DES-style mutation stream as the warm/cold agreement test.
    for (const core::Assignment& assignment : a.assignments) {
      if (net.established_circuit(assignment.request.processor) == nullptr &&
          rng.bernoulli(0.5)) {
        net.establish(assignment.circuit);
      }
    }
    for (topo::ProcessorId p = 0; p < net.processor_count(); ++p) {
      if (const topo::Circuit* held = net.established_circuit(p);
          held != nullptr && rng.bernoulli(0.3)) {
        const topo::Circuit copy = *held;
        net.release(copy);
      }
    }
    if (rng.bernoulli(0.2)) {
      const auto link =
          static_cast<topo::LinkId>(rng.uniform_int(0, net.link_count() - 1));
      if (net.link_failed(link)) {
        net.repair_link(link);
      } else {
        net.fail_link(link);
      }
    }
  }
}

TEST(WarmStartCanonical, NameAdvertisesCanonicalMode) {
  core::WarmMaxFlowScheduler canonical(/*verify=*/false, /*canonical=*/true);
  EXPECT_EQ(canonical.name(), "max-flow(dinic,canonical)");
  core::WarmMaxFlowScheduler warm(/*verify=*/false);
  EXPECT_EQ(warm.name(), "max-flow(dinic,warm)");
}

TEST(WarmStartScheduler, SurvivesTopologyChange) {
  const topo::Network omega = topo::make_named("omega", 8);
  const topo::Network cube = topo::make_named("cube", 8);
  core::WarmMaxFlowScheduler warm(/*verify=*/true);
  core::MaxFlowScheduler cold;
  util::Rng rng(11);
  for (const topo::Network* net : {&omega, &cube, &omega}) {
    for (int cycle = 0; cycle < 5; ++cycle) {
      const core::Problem problem = test::random_problem(rng, *net, 0.6, 0.6);
      EXPECT_EQ(warm.schedule(problem).allocated(),
                cold.schedule(problem).allocated());
    }
  }
  // One rebuild per topology switch, then warm within each run.
  EXPECT_EQ(warm.warm_stats().cold_rebuilds, 3);
  EXPECT_EQ(warm.warm_stats().warm_cycles, 12);
}

}  // namespace
