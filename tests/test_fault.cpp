// The fault model end-to-end: network fault state and automatic circuit
// teardown, the seeded injector's deterministic schedules, the degraded-mode
// FallbackScheduler, and the token/element machine watchdogs.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "core/scheduler.hpp"
#include "fault/fault_injector.hpp"
#include "token/element_machine.hpp"
#include "token/token_machine.hpp"
#include "topo/builders.hpp"

namespace rsin {
namespace {

/// Every processor requests, every resource is free (homogeneous type 0).
core::Problem full_load(const topo::Network& net) {
  core::Problem problem;
  problem.network = &net;
  for (topo::ProcessorId p = 0; p < net.processor_count(); ++p) {
    problem.requests.push_back(core::Request{p, 0, 0});
  }
  for (topo::ResourceId r = 0; r < net.resource_count(); ++r) {
    problem.free_resources.push_back(core::FreeResource{r, 0, 0});
  }
  return problem;
}

/// True when any assignment's circuit crosses a faulty link or switch.
bool uses_faulty_element(const topo::Network& net,
                         const core::ScheduleResult& result) {
  for (const core::Assignment& assignment : result.assignments) {
    for (const topo::LinkId l : assignment.circuit.links) {
      if (net.link_faulty(l)) return true;
    }
  }
  return false;
}

TEST(FaultModel, LinkFaultStateIsDistinctFromOccupancy) {
  topo::Network net = topo::make_named("omega", 8);
  ASSERT_TRUE(net.fault_free());
  const topo::LinkId link = 0;
  net.fail_link(link);
  EXPECT_TRUE(net.link_failed(link));
  EXPECT_TRUE(net.link_faulty(link));
  EXPECT_FALSE(net.link(link).occupied);
  EXPECT_FALSE(net.link_free(link));
  EXPECT_EQ(net.faulty_link_count(), 1);
  EXPECT_FALSE(net.fault_free());
  // Occupying a faulty link is a caller error.
  EXPECT_THROW(net.occupy_link(link), std::invalid_argument);
  // release_all clears occupancy but keeps hardware fault state.
  net.release_all();
  EXPECT_TRUE(net.link_failed(link));
  net.repair_link(link);
  EXPECT_TRUE(net.fault_free());
  EXPECT_TRUE(net.link_free(link));
}

TEST(FaultModel, LinkFailureTearsDownCrossingCircuits) {
  topo::Network net = topo::make_named("omega", 8);
  core::GreedyScheduler greedy;
  const core::Problem problem = full_load(net);
  const core::ScheduleResult result = greedy.schedule(problem);
  ASSERT_GT(result.allocated(), 0);
  for (const core::Assignment& assignment : result.assignments) {
    net.establish(assignment.circuit);
  }
  const topo::Circuit& victim_circuit = result.assignments.front().circuit;
  ASSERT_NE(net.established_circuit(victim_circuit.processor), nullptr);

  const std::vector<topo::Circuit> victims =
      net.fail_link(victim_circuit.links.front());
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims.front().processor, victim_circuit.processor);
  EXPECT_EQ(victims.front().resource, victim_circuit.resource);
  EXPECT_EQ(net.established_circuit(victim_circuit.processor), nullptr);
  // The victim's links are released (except the failed one stays unusable).
  for (const topo::LinkId l : victim_circuit.links) {
    EXPECT_FALSE(net.link(l).occupied);
  }
  // Unrelated circuits survive.
  for (std::size_t i = 1; i < result.assignments.size(); ++i) {
    EXPECT_NE(
        net.established_circuit(result.assignments[i].request.processor),
        nullptr);
  }
  // Failing the same link again is idempotent and reports no new victims.
  EXPECT_TRUE(net.fail_link(victim_circuit.links.front()).empty());
}

TEST(FaultModel, SwitchFailurePoisonsTouchingLinks) {
  topo::Network net = topo::make_named("omega", 8);
  net.fail_switch(0);
  EXPECT_TRUE(net.switch_failed(0));
  EXPECT_EQ(net.failed_switch_count(), 1);
  std::int32_t poisoned = 0;
  for (topo::LinkId l = 0; l < net.link_count(); ++l) {
    if (!net.link_faulty(l)) continue;
    ++poisoned;
    EXPECT_FALSE(net.link_failed(l))
        << "switch failure must not set per-link failed bits";
  }
  EXPECT_GT(poisoned, 0);
  EXPECT_EQ(net.faulty_link_count(), poisoned);
  net.repair_switch(0);
  EXPECT_TRUE(net.fault_free());
}

TEST(FaultModel, InjectorSchedulesAreDeterministicAndSorted) {
  const topo::Network net = topo::make_named("omega", 8);
  fault::FaultConfig config;
  config.link_mttf = 5.0;
  config.link_mttr = 1.0;
  config.switch_mttf = 20.0;
  config.switch_mttr = 2.0;
  config.horizon = 200.0;
  config.seed = 42;
  const fault::FaultInjector injector(config);
  const std::vector<fault::FaultEvent> schedule = injector.make_schedule(net);
  ASSERT_FALSE(schedule.empty());
  EXPECT_TRUE(std::is_sorted(
      schedule.begin(), schedule.end(),
      [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
        return a.time < b.time;
      }));
  for (const fault::FaultEvent& event : schedule) {
    EXPECT_GE(event.time, 0.0);
    EXPECT_LT(event.time, config.horizon);
  }
  // Same config, same network shape: identical schedule.
  const std::vector<fault::FaultEvent> again = injector.make_schedule(net);
  ASSERT_EQ(schedule.size(), again.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i].time, again[i].time);
    EXPECT_EQ(schedule[i].kind, again[i].kind);
    EXPECT_EQ(schedule[i].element, again[i].element);
  }
  // A different seed decorrelates the stream.
  fault::FaultConfig other = config;
  other.seed = 43;
  const auto different = fault::FaultInjector(other).make_schedule(net);
  EXPECT_FALSE(schedule.size() == different.size() &&
               std::equal(schedule.begin(), schedule.end(), different.begin(),
                          [](const fault::FaultEvent& a,
                             const fault::FaultEvent& b) {
                            return a.time == b.time && a.kind == b.kind &&
                                   a.element == b.element;
                          }));
}

TEST(FaultModel, PermanentFaultsNeverRepair) {
  const topo::Network net = topo::make_named("omega", 8);
  fault::FaultConfig config;
  config.link_mttf = 10.0;
  config.horizon = 500.0;
  config.transient = false;
  for (const fault::FaultEvent& event :
       fault::FaultInjector(config).make_schedule(net)) {
    EXPECT_TRUE(event.kind == fault::FaultKind::kLinkFail ||
                event.kind == fault::FaultKind::kSwitchFail)
        << "permanent schedules must not contain repairs at t=" << event.time;
  }
}

TEST(FaultModel, ApplyEventRoundTrips) {
  topo::Network net = topo::make_named("omega", 8);
  fault::FaultConfig config;
  config.link_mttf = 2.0;
  config.horizon = 50.0;
  const auto schedule = fault::FaultInjector(config).make_schedule(net);
  ASSERT_FALSE(schedule.empty());
  for (const fault::FaultEvent& event : schedule) {
    fault::apply_event(net, event);
  }
  // Replaying the full transient schedule ends with every element either
  // repaired or failed consistently with the last event per element.
  net.release_all();
  EXPECT_GE(net.faulty_link_count(), 0);
  for (topo::LinkId l = 0; l < net.link_count(); ++l) {
    if (net.link_failed(l)) net.repair_link(l);
  }
  EXPECT_TRUE(net.fault_free());
}

TEST(FaultModel, FabricOnlyFilterSkipsTerminalLinks) {
  const topo::Network net = topo::make_named("omega", 8);
  fault::FaultConfig config;  // fabric_links_only = true
  for (topo::LinkId l = 0; l < net.link_count(); ++l) {
    const topo::Link& link = net.link(l);
    const bool fabric = link.from.kind == topo::NodeKind::kSwitch &&
                        link.to.kind == topo::NodeKind::kSwitch;
    EXPECT_EQ(fault::link_eligible(net, l, config), fabric);
  }
  config.fabric_links_only = false;
  for (topo::LinkId l = 0; l < net.link_count(); ++l) {
    EXPECT_TRUE(fault::link_eligible(net, l, config));
  }
}

/// Primary stub that always throws, for degraded-mode tests.
class ThrowingScheduler final : public core::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "throwing"; }
  core::ScheduleResult schedule(const core::Problem&) override {
    throw std::runtime_error("primary solver exploded");
  }
};

TEST(FaultFallback, OptimalPathWhenPrimaryHealthy) {
  const topo::Network net = topo::make_named("omega", 8);
  const core::Problem problem = full_load(net);
  core::FallbackScheduler scheduler(
      std::make_unique<core::MaxFlowScheduler>());
  const core::ScheduleResult result = scheduler.schedule(problem);
  EXPECT_FALSE(core::verify_schedule(problem, result).has_value());
  EXPECT_EQ(scheduler.last_report().outcome, core::ScheduleOutcome::kOptimal);
  EXPECT_EQ(scheduler.cycles(), 1);
  EXPECT_EQ(scheduler.degraded_cycles(), 0);
  EXPECT_EQ(scheduler.name(), "fallback(max-flow(dinic)->greedy)");
}

TEST(FaultFallback, DegradesToGreedyWhenPrimaryThrows) {
  const topo::Network net = topo::make_named("omega", 8);
  const core::Problem problem = full_load(net);
  core::FallbackScheduler scheduler(std::make_unique<ThrowingScheduler>());
  const core::ScheduleResult result = scheduler.schedule(problem);
  EXPECT_FALSE(core::verify_schedule(problem, result).has_value());
  EXPECT_GT(result.allocated(), 0);
  EXPECT_EQ(scheduler.last_report().outcome,
            core::ScheduleOutcome::kDegraded);
  EXPECT_NE(scheduler.last_report().detail.find("exploded"),
            std::string::npos);
  EXPECT_EQ(scheduler.degraded_cycles(), 1);
}

TEST(FaultFallback, PartialWhenBothPathsFail) {
  core::Problem invalid;  // null network: even greedy cannot serve it
  core::FallbackScheduler scheduler(std::make_unique<ThrowingScheduler>());
  core::ScheduleResult result;
  EXPECT_NO_THROW(result = scheduler.schedule(invalid));
  EXPECT_EQ(result.allocated(), 0);
  EXPECT_EQ(scheduler.last_report().outcome, core::ScheduleOutcome::kPartial);
}

TEST(FaultFallback, RejectsNullPrimary) {
  EXPECT_THROW(core::FallbackScheduler(nullptr), std::invalid_argument);
}

TEST(FaultWatchdog, FaultAwareMachineSchedulesAroundFailures) {
  // Acceptance criterion: killing any single fabric switchbox never makes
  // the token machine loop — it terminates within its budget and matches
  // Dinic on the fault-masked network.
  core::MaxFlowScheduler dinic;
  const topo::Network reference = topo::make_named("omega", 8);
  for (topo::SwitchId sw = 0; sw < reference.switch_count(); ++sw) {
    topo::Network net = topo::make_named("omega", 8);
    net.fail_switch(sw);
    const core::Problem problem = full_load(net);

    token::TokenMachine machine(problem);
    token::TokenStats stats;
    const core::ScheduleResult token_result = machine.run(&stats);
    EXPECT_FALSE(stats.watchdog_fired) << "switch " << sw;
    EXPECT_FALSE(core::verify_schedule(problem, token_result).has_value());
    EXPECT_FALSE(uses_faulty_element(net, token_result));
    EXPECT_EQ(token_result.allocated(), dinic.schedule(problem).allocated())
        << "switch " << sw;

    token::ElementMachine element(problem);
    const core::ScheduleResult element_result = element.run();
    EXPECT_EQ(element_result.allocated(), token_result.allocated())
        << "switch " << sw;
  }
}

TEST(FaultWatchdog, UnawareMachineTerminatesDespiteLostTokens) {
  // Fault-unaware elements launch tokens into dead switches; the tokens are
  // swallowed. The machine must still terminate for every possible single
  // switch kill, with a (possibly) reduced allocation.
  core::MaxFlowScheduler dinic;
  const std::int32_t switches = topo::make_named("omega", 8).switch_count();
  for (topo::SwitchId sw = 0; sw < switches; ++sw) {
    topo::Network net = topo::make_named("omega", 8);
    net.fail_switch(sw);
    const core::Problem problem = full_load(net);
    token::TokenOptions options;
    options.fault_aware = false;
    token::TokenMachine machine(problem, options);
    token::TokenStats stats;
    const core::ScheduleResult result = machine.run(&stats);
    EXPECT_FALSE(core::verify_schedule(problem, result).has_value());
    EXPECT_GT(stats.lost_tokens, 0) << "switch " << sw;
    EXPECT_LE(result.allocated(), dinic.schedule(problem).allocated());
  }
}

TEST(FaultWatchdog, BudgetExhaustionOnHealthyMachineIsALibraryBug) {
  const topo::Network net = topo::make_named("omega", 8);
  const core::Problem problem = full_load(net);
  token::TokenOptions options;
  options.max_clock_periods = 1;  // absurdly small on a fault-free network
  token::TokenMachine machine(problem, options);
  EXPECT_THROW(machine.run(), std::logic_error);
}

TEST(FaultWatchdog, BudgetExhaustionWithFaultsAbortsCleanly) {
  topo::Network net = topo::make_named("omega", 8);
  net.fail_switch(0);
  const core::Problem problem = full_load(net);
  token::TokenOptions options;
  options.max_clock_periods = 2;
  token::TokenMachine machine(problem, options);
  token::TokenStats stats;
  core::ScheduleResult result;
  EXPECT_NO_THROW(result = machine.run(&stats));
  EXPECT_TRUE(stats.watchdog_fired);
  EXPECT_NE(stats.watchdog_reason.find("clock budget"), std::string::npos);
  EXPECT_FALSE(core::verify_schedule(problem, result).has_value());
}

TEST(FaultWatchdog, ElementMachineBudgetErrorIsDiagnosable) {
  const topo::Network net = topo::make_named("omega", 8);
  const core::Problem problem = full_load(net);
  token::ElementMachine machine(problem, /*max_clock_periods=*/2);
  try {
    machine.run();
    FAIL() << "expected the clock budget to fire";
  } catch (const std::logic_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("failed to converge"), std::string::npos);
    EXPECT_NE(what.find("links="), std::string::npos);
    EXPECT_NE(what.find("budget"), std::string::npos);
  }
}

TEST(FaultWatchdog, RejectsNegativeBudgets) {
  const topo::Network net = topo::make_named("omega", 8);
  const core::Problem problem = full_load(net);
  token::TokenOptions options;
  options.max_clock_periods = -1;
  EXPECT_THROW(token::TokenMachine(problem, options), std::invalid_argument);
  EXPECT_THROW(token::ElementMachine(problem, -1), std::invalid_argument);
}

}  // namespace
}  // namespace rsin
