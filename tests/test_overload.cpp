// Overload-safe runtime: admission control (bounded queues + shed
// policies), the hysteretic degradation controller under arrival bursts,
// config validation at the simulate_system boundary, and the retry/drop
// interaction under fault storms.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "core/scheduler.hpp"
#include "sim/system_sim.hpp"
#include "topo/builders.hpp"

namespace rsin {
namespace {

sim::SystemConfig overload_config() {
  sim::SystemConfig config;
  config.arrival_rate = 0.6;
  config.warmup_time = 20.0;
  config.measure_time = 400.0;
  config.seed = 3;
  config.validate_invariants = true;
  return config;
}

// --- degradation controller ----------------------------------------------

TEST(Overload, BurstDegradesThenRecoversToOptimal) {
  // A 2x arrival burst in mid-run must push the controller above kOptimal
  // (overload_fraction > 0) and, once the burst passes, the hysteretic
  // detector must walk back down so the run ends at the pre-burst level
  // with a finite queue. This is the headline acceptance criterion.
  const topo::Network net = topo::make_named("omega", 8);
  core::WarmMaxFlowScheduler scheduler(/*verify=*/true);
  sim::SystemConfig config = overload_config();
  config.burst_multiplier = 2.0;
  config.burst_start = 100.0;
  config.burst_duration = 80.0;
  config.overload_on = 2.0;
  config.overload_window = 5.0;
  config.overload_dwell_cycles = 20;
  config.max_queue = 64;  // keeps the burst backlog finite by construction

  const sim::SystemMetrics metrics =
      sim::simulate_system(net, scheduler, config);

  EXPECT_GT(metrics.overload_fraction, 0.0);
  EXPECT_LT(metrics.overload_fraction, 1.0);
  // At least one escalation and one de-escalation.
  EXPECT_GE(metrics.degradation_transitions, 2);
  EXPECT_EQ(metrics.final_level, sim::DegradationLevel::kOptimal);
  EXPECT_TRUE(std::isfinite(metrics.mean_queue_length));
  // mean_queue_length totals across processors; the per-processor bound
  // caps it at max_queue * processor_count.
  EXPECT_LE(metrics.mean_queue_length, 8.0 * config.max_queue);
  // The time-in-level histogram is a partition of the measured horizon.
  double total = 0.0;
  for (std::size_t level = 0; level < sim::kDegradationLevels; ++level) {
    total += metrics.time_in_level[level];
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(metrics.time_in_level[0], 0.0);
}

TEST(Overload, SustainedOverloadEscalatesToGreedy) {
  // With arrivals far beyond capacity and a hair-trigger threshold, the
  // controller must climb the full ladder to kGreedy and spend real time
  // there; degraded cycles are then visible in degraded_cycle_fraction.
  const topo::Network net = topo::make_named("omega", 8);
  core::MaxFlowScheduler scheduler;
  sim::SystemConfig config = overload_config();
  config.arrival_rate = 3.0;  // ~3x capacity, sustained
  config.measure_time = 200.0;
  config.overload_on = 1.0;
  config.overload_dwell_cycles = 5;
  config.max_queue = 32;

  const sim::SystemMetrics metrics =
      sim::simulate_system(net, scheduler, config);

  // The climb finishes during warmup, so measured time concentrates at the
  // top rung (the passage through randomized-matching is covered by the
  // ladder-storm test below).
  EXPECT_GT(metrics.time_in_level[3], 0.0);
  EXPECT_EQ(metrics.final_level, sim::DegradationLevel::kGreedy);
  EXPECT_GT(metrics.degraded_cycle_fraction, 0.0);
  EXPECT_GT(metrics.tasks_completed, 0);
}

TEST(Overload, ControllerDisabledStaysOptimal) {
  const topo::Network net = topo::make_named("omega", 8);
  core::MaxFlowScheduler scheduler;
  sim::SystemConfig config = overload_config();
  config.arrival_rate = 3.0;
  config.measure_time = 100.0;
  config.overload_on = 0.0;  // detector off
  config.max_queue = 32;

  const sim::SystemMetrics metrics =
      sim::simulate_system(net, scheduler, config);
  EXPECT_EQ(metrics.overload_fraction, 0.0);
  EXPECT_EQ(metrics.degradation_transitions, 0);
  EXPECT_EQ(metrics.final_level, sim::DegradationLevel::kOptimal);
  EXPECT_EQ(metrics.time_in_level[0], 1.0);
}

// --- admission control ----------------------------------------------------

TEST(Overload, BoundedQueueShedsAndStaysBounded) {
  const topo::Network net = topo::make_named("omega", 8);
  sim::SystemConfig config = overload_config();
  config.arrival_rate = 3.0;
  config.measure_time = 150.0;
  config.max_queue = 4;

  core::MaxFlowScheduler bounded_scheduler;
  const sim::SystemMetrics bounded =
      sim::simulate_system(net, bounded_scheduler, config);
  EXPECT_GT(bounded.tasks_shed, 0);
  // Total queued across the 8 processors can never exceed 8 * max_queue.
  EXPECT_LE(bounded.mean_queue_length, 32.0);

  // The same storm with unbounded queues backs up far beyond the bound —
  // the admission control is what keeps the backlog finite.
  sim::SystemConfig unbounded_config = config;
  unbounded_config.max_queue = 0;
  core::MaxFlowScheduler unbounded_scheduler;
  const sim::SystemMetrics unbounded =
      sim::simulate_system(net, unbounded_scheduler, unbounded_config);
  EXPECT_EQ(unbounded.tasks_shed, 0);
  EXPECT_GT(unbounded.mean_queue_length, bounded.mean_queue_length);
}

TEST(Overload, ShedPoliciesDifferButBothHoldTheBound) {
  const topo::Network net = topo::make_named("omega", 8);
  sim::SystemConfig config = overload_config();
  config.arrival_rate = 3.0;
  config.measure_time = 150.0;
  config.max_queue = 4;
  config.drop_timeout = 20.0;

  config.shed_policy = sim::ShedPolicy::kDropTail;
  core::MaxFlowScheduler drop_tail_scheduler;
  const sim::SystemMetrics drop_tail =
      sim::simulate_system(net, drop_tail_scheduler, config);

  config.shed_policy = sim::ShedPolicy::kOldestFirst;
  core::MaxFlowScheduler oldest_first_scheduler;
  const sim::SystemMetrics oldest_first =
      sim::simulate_system(net, oldest_first_scheduler, config);

  EXPECT_GT(drop_tail.tasks_shed, 0);
  EXPECT_GT(oldest_first.tasks_shed, 0);
  EXPECT_LE(drop_tail.mean_queue_length, 32.0);
  EXPECT_LE(oldest_first.mean_queue_length, 32.0);
  // Oldest-first admits every arrival (evicting stale work), so nothing it
  // keeps can sit long enough to hit the drop timeout; drop-tail keeps old
  // tasks and rejects new ones, aging its queue instead.
  EXPECT_GE(drop_tail.tasks_dropped, oldest_first.tasks_dropped);
}

TEST(Overload, ShedPolicyNamesAreStable) {
  EXPECT_STREQ(sim::to_string(sim::ShedPolicy::kDropTail), "drop-tail");
  EXPECT_STREQ(sim::to_string(sim::ShedPolicy::kOldestFirst), "oldest-first");
  EXPECT_STREQ(sim::to_string(sim::DegradationLevel::kOptimal), "optimal");
  EXPECT_STREQ(sim::to_string(sim::DegradationLevel::kRelaxed), "relaxed");
  EXPECT_STREQ(sim::to_string(sim::DegradationLevel::kRandomizedMatch),
               "randomized-match");
  EXPECT_STREQ(sim::to_string(sim::DegradationLevel::kGreedy), "greedy");
}

TEST(Overload, LadderStormWalksThroughRandomizedMatchingAndBack) {
  // Cross-scheduler ladder walk: an EWMA overload storm must step the
  // controller optimal -> relaxed -> randomized-matching (a real live
  // scheduler swap, not a flag flip) -> greedy, then back down once the
  // storm passes. level_path records every transition in order; the
  // hysteretic controller only ever moves one rung at a time.
  const topo::Network net = topo::make_named("omega", 8);
  core::WarmMaxFlowScheduler scheduler(/*verify=*/true);
  sim::SystemConfig config = overload_config();
  config.arrival_rate = 0.6;
  config.measure_time = 400.0;
  config.burst_multiplier = 5.0;
  config.burst_start = 80.0;
  config.burst_duration = 120.0;
  config.overload_on = 1.0;
  config.overload_window = 5.0;
  config.overload_dwell_cycles = 10;
  config.max_queue = 64;

  const sim::SystemMetrics metrics =
      sim::simulate_system(net, scheduler, config);

  ASSERT_GE(metrics.level_path.size(), 2u);
  EXPECT_EQ(metrics.level_path.front(), 0);  // measurement starts at optimal
  std::int32_t peak = 0;
  for (std::size_t i = 1; i < metrics.level_path.size(); ++i) {
    const std::int32_t step =
        metrics.level_path[i] - metrics.level_path[i - 1];
    // Monotone rungs: the hysteretic controller never skips a level.
    EXPECT_TRUE(step == 1 || step == -1)
        << "jump of " << step << " at path index " << i;
    peak = std::max(peak, metrics.level_path[i]);
  }
  // The storm is strong enough to reach at least the randomized-matching
  // rung, and that rung accumulates real simulated time.
  EXPECT_GE(peak, 2);
  EXPECT_GT(metrics.time_in_level[2], 0.0);
  // Recovery: the run ends back at optimal service.
  EXPECT_EQ(metrics.final_level, sim::DegradationLevel::kOptimal);
  EXPECT_EQ(metrics.level_path.back(), 0);

  // The walk is deterministic under a fixed seed.
  core::WarmMaxFlowScheduler rerun_scheduler(/*verify=*/true);
  const sim::SystemMetrics rerun =
      sim::simulate_system(net, rerun_scheduler, config);
  EXPECT_EQ(rerun.level_path, metrics.level_path);
}

// --- config validation ----------------------------------------------------

TEST(Overload, ValidateRejectsNonFiniteAndOutOfRangeFields) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const auto expect_rejected = [](sim::SystemConfig config) {
    EXPECT_THROW(config.validate(), std::invalid_argument);
  };

  sim::SystemConfig config;
  config.arrival_rate = nan;
  expect_rejected(config);

  config = sim::SystemConfig{};
  config.arrival_rate = -0.5;
  expect_rejected(config);

  config = sim::SystemConfig{};
  config.cycle_interval = 0.0;
  expect_rejected(config);

  config = sim::SystemConfig{};
  config.mean_service_time = 0.0;
  expect_rejected(config);

  config = sim::SystemConfig{};
  config.transmission_time = -1.0;
  expect_rejected(config);

  config = sim::SystemConfig{};
  config.retry_backoff_base = 0.0;
  expect_rejected(config);

  config = sim::SystemConfig{};
  config.retry_backoff_max = nan;
  expect_rejected(config);

  config = sim::SystemConfig{};
  config.max_queue = -1;
  expect_rejected(config);

  config = sim::SystemConfig{};
  config.measure_time = 0.0;
  expect_rejected(config);

  config = sim::SystemConfig{};
  config.warmup_time = -1.0;
  expect_rejected(config);

  config = sim::SystemConfig{};
  config.min_pending_requests = 0;
  expect_rejected(config);

  config = sim::SystemConfig{};
  config.burst_multiplier = 0.0;
  expect_rejected(config);

  // Overload-controller fields are only constrained once the controller is
  // enabled (overload_on > 0).
  config = sim::SystemConfig{};
  config.overload_off_fraction = 2.0;  // ignored while overload_on == 0
  EXPECT_NO_THROW(config.validate());
  config.overload_on = 1.0;
  expect_rejected(config);

  config = sim::SystemConfig{};
  config.overload_on = 1.0;
  config.overload_window = 0.0;
  expect_rejected(config);

  config = sim::SystemConfig{};
  config.overload_on = 1.0;
  config.overload_dwell_cycles = 0;
  expect_rejected(config);

  // Embedded fault config is validated too (with the horizon defaulting
  // rule applied first, so a zero horizon alone is fine).
  config = sim::SystemConfig{};
  config.faults.link_mttf = nan;
  expect_rejected(config);

  config = sim::SystemConfig{};
  config.faults.link_mttf = 10.0;
  config.faults.link_mttr = -1.0;
  expect_rejected(config);

  EXPECT_NO_THROW(sim::SystemConfig{}.validate());
}

TEST(Overload, SimulateSystemValidatesOnEntry) {
  const topo::Network net = topo::make_named("omega", 8);
  core::MaxFlowScheduler scheduler;
  sim::SystemConfig config;
  config.arrival_rate = std::numeric_limits<double>::infinity();
  EXPECT_THROW(sim::simulate_system(net, scheduler, config),
               std::invalid_argument);
}

// --- retry / drop interaction --------------------------------------------

TEST(Overload, FaultStormRetriesAndDropsWithoutStarvation) {
  // Fault storm + drop timeout + bounded queues: teardown victims re-queue
  // at the head with backoff, stale tasks are dropped, and despite all the
  // churn the run keeps completing work — no starvation, and the per-cycle
  // invariant sweep (incl. task conservation) holds throughout.
  const topo::Network net = topo::make_named("benes", 8);
  core::WarmMaxFlowScheduler scheduler(/*verify=*/true);
  sim::SystemConfig config = overload_config();
  config.arrival_rate = 1.2;
  config.measure_time = 300.0;
  config.faults.link_mttf = 10.0;
  config.faults.link_mttr = 2.0;
  config.drop_timeout = 15.0;
  config.max_queue = 8;
  config.shed_policy = sim::ShedPolicy::kOldestFirst;

  const sim::SystemMetrics metrics =
      sim::simulate_system(net, scheduler, config);

  EXPECT_GT(metrics.faults_injected, 0);
  EXPECT_GT(metrics.retries, 0);
  EXPECT_GT(metrics.tasks_dropped, 0);
  EXPECT_GT(metrics.tasks_completed, 0);
  // Dropped tasks waited at least the timeout; nothing younger was
  // sacrificed for a retrying head-of-queue task, so completions dominate.
  EXPECT_GT(metrics.tasks_completed, metrics.tasks_dropped);

  // The whole interaction is deterministic: an identical rerun produces
  // identical drop/retry/shed counts.
  core::WarmMaxFlowScheduler rerun_scheduler(/*verify=*/true);
  const sim::SystemMetrics rerun =
      sim::simulate_system(net, rerun_scheduler, config);
  EXPECT_EQ(rerun.tasks_dropped, metrics.tasks_dropped);
  EXPECT_EQ(rerun.retries, metrics.retries);
  EXPECT_EQ(rerun.tasks_shed, metrics.tasks_shed);
  EXPECT_EQ(rerun.tasks_completed, metrics.tasks_completed);
}

}  // namespace
}  // namespace rsin
