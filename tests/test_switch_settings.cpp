#include "topo/switch_settings.hpp"

#include <gtest/gtest.h>

#include "core/routing.hpp"
#include "core/scheduler.hpp"
#include "topo/builders.hpp"

namespace rsin::topo {
namespace {

TEST(SwitchSettings, EmptyCircuitsMeansAllIdle) {
  const Network net = make_omega(8);
  const auto config = SwitchConfiguration::from_circuits(net, {});
  EXPECT_EQ(config.active_switch_count(), 0);
  for (SwitchId sw = 0; sw < net.switch_count(); ++sw) {
    EXPECT_TRUE(config.setting(sw).idle());
    EXPECT_EQ(config.two_by_two_state(sw), TwoByTwoState::kIdle);
  }
}

TEST(SwitchSettings, SingleCircuitSetsEachTraversedSwitch) {
  const Network net = make_omega(8);
  const auto paths = core::enumerate_free_paths(net, 3, 6);
  ASSERT_EQ(paths.size(), 1u);
  const Circuit circuit = paths.front();
  const auto config = SwitchConfiguration::from_circuits(
      net, std::span<const Circuit>(&circuit, 1));
  // An 8x8 Omega circuit crosses exactly 3 switches.
  EXPECT_EQ(config.active_switch_count(), 3);
  for (SwitchId sw = 0; sw < net.switch_count(); ++sw) {
    const auto& setting = config.setting(sw);
    EXPECT_LE(setting.connections.size(), 1u);
    if (!setting.idle()) {
      EXPECT_NE(config.two_by_two_state(sw), TwoByTwoState::kIdle);
      EXPECT_NE(config.two_by_two_state(sw), TwoByTwoState::kMixed);
    }
  }
}

TEST(SwitchSettings, FullPermutationUsesEverySwitch) {
  // Identity permutation on an 8x8 Omega: every switch carries two
  // connections, each box in a definite straight/exchange state.
  Network net = make_omega(8);
  std::vector<Circuit> circuits;
  for (std::int32_t i = 0; i < 8; ++i) {
    auto paths = core::enumerate_free_paths(net, i, i);
    ASSERT_EQ(paths.size(), 1u);
    net.establish(paths.front());
    circuits.push_back(std::move(paths.front()));
  }
  const auto config = SwitchConfiguration::from_circuits(net, circuits);
  EXPECT_EQ(config.active_switch_count(), net.switch_count());
  for (SwitchId sw = 0; sw < net.switch_count(); ++sw) {
    EXPECT_EQ(config.setting(sw).connections.size(), 2u);
    const auto state = config.two_by_two_state(sw);
    EXPECT_TRUE(state == TwoByTwoState::kStraight ||
                state == TwoByTwoState::kExchange);
  }
}

TEST(SwitchSettings, SchedulerOutputsAreAlwaysRealizable) {
  // Theorem 1 round trip: every schedule's circuits induce a valid
  // non-broadcast setting on every topology.
  util::Rng rng(55);
  core::MaxFlowScheduler scheduler;
  for (const char* name : {"omega", "cube", "benes", "gamma"}) {
    const Network net = make_named(name, 8);
    for (int round = 0; round < 5; ++round) {
      std::vector<ProcessorId> requesting;
      std::vector<ResourceId> available;
      for (std::int32_t i = 0; i < 8; ++i) {
        if (rng.bernoulli(0.7)) requesting.push_back(i);
        if (rng.bernoulli(0.7)) available.push_back(i);
      }
      const core::Problem problem =
          core::make_problem(net, requesting, available);
      const core::ScheduleResult result = scheduler.schedule(problem);
      std::vector<Circuit> circuits;
      for (const core::Assignment& a : result.assignments) {
        circuits.push_back(a.circuit);
      }
      EXPECT_NO_THROW({
        const auto config = SwitchConfiguration::from_circuits(net, circuits);
        (void)config;
      }) << name;
    }
  }
}

TEST(SwitchSettings, RejectsConflictingCircuits) {
  const Network net = make_omega(8);
  // Two circuits that share their first-stage switch input port: same
  // processor to two resources.
  const auto a = core::enumerate_free_paths(net, 0, 0);
  const auto b = core::enumerate_free_paths(net, 0, 4);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  const std::vector<Circuit> conflicting = {a.front(), b.front()};
  EXPECT_THROW(SwitchConfiguration::from_circuits(net, conflicting),
               std::invalid_argument);
}

TEST(SwitchSettings, RejectsBrokenCircuit) {
  const Network net = make_omega(8);
  Circuit broken{0, 5, {net.processor_link(0)}};  // stops at the switch
  EXPECT_THROW(SwitchConfiguration::from_circuits(
                   net, std::span<const Circuit>(&broken, 1)),
               std::invalid_argument);
}

TEST(SwitchSettings, CrossbarIsMixedClass) {
  const Network net = make_crossbar(4, 4);
  const auto paths = core::enumerate_free_paths(net, 0, 2);
  ASSERT_EQ(paths.size(), 1u);
  const Circuit circuit = paths.front();
  const auto config = SwitchConfiguration::from_circuits(
      net, std::span<const Circuit>(&circuit, 1));
  EXPECT_EQ(config.two_by_two_state(0), TwoByTwoState::kMixed);
  ASSERT_EQ(config.setting(0).connections.size(), 1u);
  EXPECT_EQ(config.setting(0).connections[0],
            (std::pair<std::int32_t, std::int32_t>{0, 2}));
}

}  // namespace
}  // namespace rsin::topo
