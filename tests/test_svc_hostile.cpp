// Hostile-client edge defenses of the rsind server: oversized lines,
// slowloris partial lines, idle connections, unread-reply floods, connection
// count shedding, and binary garbage — every one must cost the attacker
// their connection, never the daemon its responsiveness (DESIGN.md §12).
// Plus the protocol parser's CRLF / embedded-NUL / control-byte handling.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "svc/faultfs.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"

namespace rsin::svc {
namespace {

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name)
      : path(std::string(::testing::TempDir()) + name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

/// In-process server with aggressive (test-speed) edge limits.
struct HostileFixture {
  TempDir dir;
  std::string socket_path;
  ServerConfig config;
  std::unique_ptr<Server> server;
  std::thread thread;
  int exit_code = -1;

  explicit HostileFixture(const std::string& name)
      : dir("hostile_" + name), socket_path(dir.path + "/rsind.sock") {
    config.socket_path = socket_path;
    config.service.dir = dir.path;
    config.service.pool_shards = 2;
    config.watchdog_ms = 0;
    config.poll_timeout_ms = 10;
  }

  void start() {
    server = std::make_unique<Server>(config);
    thread = std::thread([this] { exit_code = server->run(false); });
  }

  int stop() {
    const char byte = 's';
    EXPECT_EQ(::write(server->wake_fd(), &byte, 1), 1);
    thread.join();
    return exit_code;
  }

  ~HostileFixture() {
    if (thread.joinable()) stop();
  }

  Client client() {
    ClientOptions options;
    options.socket_path = socket_path;
    options.timeout_ms = 5000;
    options.retries = 12;
    options.backoff_ms = 10;
    return Client(options);
  }
};

/// A raw, misbehaving connection (no protocol library, no retries).
struct RawConn {
  int fd = -1;

  explicit RawConn(const std::string& socket_path) {
    // Retry the connect while the server thread is still binding.
    for (int attempt = 0; attempt < 200; ++attempt) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) break;
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, socket_path.c_str(),
                   sizeof(addr.sun_path) - 1);
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        return;
      }
      ::close(fd);
      fd = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  /// True when every byte was handed to the kernel.
  bool send_all(const std::string& bytes) {
    std::size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + done, bytes.size() - done,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      done += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads until '\n' (returning the line without it), "" on EOF/timeout.
  std::string read_line(int timeout_ms = 2000) {
    std::string line;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    timeval tv{0, 50 * 1000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    while (std::chrono::steady_clock::now() < deadline) {
      char ch = 0;
      const ssize_t n = ::recv(fd, &ch, 1, 0);
      if (n == 1) {
        if (ch == '\n') return line;
        line.push_back(ch);
        continue;
      }
      if (n == 0) return line;  // EOF.
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return line;
    }
    return line;
  }

  /// True once the server has closed this connection (EOF observed).
  bool closed_by_peer(int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    timeval tv{0, 20 * 1000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char buf[256];
    while (std::chrono::steady_clock::now() < deadline) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0 && errno != EINTR && errno != EAGAIN &&
          errno != EWOULDBLOCK) {
        return true;  // Reset counts as closed.
      }
    }
    return false;
  }
};

TEST(HostileClient, OversizedLineIsCutWithoutHarm) {
  HostileFixture fixture("bigline");
  fixture.config.max_line_bytes = 1024;
  fixture.start();
  RawConn attacker(fixture.socket_path);
  ASSERT_GE(attacker.fd, 0);
  // 64 KB of verb with no newline: the server must cut the connection at
  // the cap, not buffer until the newline maybe arrives.
  ASSERT_TRUE(attacker.send_all(std::string(64 * 1024, 'a')));
  EXPECT_TRUE(attacker.closed_by_peer(3000));

  Client survivor = fixture.client();
  EXPECT_EQ(survivor.request("ping").body, "pong");
  EXPECT_EQ(fixture.stop(), 0);
}

TEST(HostileClient, SlowlorisPartialLineIsTimedOut) {
  HostileFixture fixture("slowloris");
  fixture.config.line_timeout_ms = 50;
  fixture.config.idle_timeout_ms = 0;
  fixture.start();
  RawConn attacker(fixture.socket_path);
  ASSERT_GE(attacker.fd, 0);
  // Three bytes of a command, then silence: the classic slowloris hold.
  ASSERT_TRUE(attacker.send_all("pin"));
  EXPECT_TRUE(attacker.closed_by_peer(3000));

  Client survivor = fixture.client();
  EXPECT_EQ(survivor.request("ping").body, "pong");
  EXPECT_EQ(fixture.stop(), 0);
}

TEST(HostileClient, IdleConnectionIsReaped) {
  HostileFixture fixture("idle");
  fixture.config.idle_timeout_ms = 50;
  fixture.start();
  RawConn loiterer(fixture.socket_path);
  ASSERT_GE(loiterer.fd, 0);
  // Send one complete command so the connection is live, then go silent.
  ASSERT_TRUE(loiterer.send_all("ping\n"));
  EXPECT_EQ(loiterer.read_line(), "ok pong");
  EXPECT_TRUE(loiterer.closed_by_peer(3000));

  Client survivor = fixture.client();
  EXPECT_EQ(survivor.request("ping").body, "pong");
  EXPECT_EQ(fixture.stop(), 0);
}

TEST(HostileClient, UnreadReplyFloodTripsTheOutputCap) {
  HostileFixture fixture("flood");
  fixture.config.max_out_bytes = 32 * 1024;
  fixture.start();
  {
    Client setup = fixture.client();
    ASSERT_TRUE(setup
                    .request("tenant name=t0 topology=omega n=8 seed=1 "
                             "scheduler=breaker")
                    .ok);
  }
  RawConn attacker(fixture.socket_path);
  ASSERT_GE(attacker.fd, 0);
  // Thousands of metrics dumps requested, zero replies read: the backlog
  // must hit max_out_bytes and cost the attacker the connection instead of
  // growing without bound.
  std::string burst;
  for (int i = 0; i < 4000; ++i) burst += "metrics tenant=t0\n";
  (void)attacker.send_all(burst);  // May fail midway once the server cuts.
  EXPECT_TRUE(attacker.closed_by_peer(5000));

  Client survivor = fixture.client();
  EXPECT_EQ(survivor.request("ping").body, "pong");
  EXPECT_EQ(fixture.stop(), 0);
}

TEST(HostileClient, ConnectionsBeyondMaxClientsAreShed) {
  HostileFixture fixture("shed");
  fixture.config.max_clients = 2;
  fixture.start();
  RawConn first(fixture.socket_path);
  RawConn second(fixture.socket_path);
  ASSERT_GE(first.fd, 0);
  ASSERT_GE(second.fd, 0);
  // Round-trips guarantee both connections are registered, not just queued
  // in the kernel.
  ASSERT_TRUE(first.send_all("ping\n"));
  EXPECT_EQ(first.read_line(), "ok pong");
  ASSERT_TRUE(second.send_all("ping\n"));
  EXPECT_EQ(second.read_line(), "ok pong");

  RawConn third(fixture.socket_path);
  ASSERT_GE(third.fd, 0);
  const std::string refusal = third.read_line();
  EXPECT_NE(refusal.find("code=busy"), std::string::npos) << refusal;
  EXPECT_TRUE(third.closed_by_peer(3000));

  // The registered clients are unaffected.
  ASSERT_TRUE(first.send_all("ping\n"));
  EXPECT_EQ(first.read_line(), "ok pong");
  EXPECT_EQ(fixture.stop(), 0);
}

TEST(HostileClient, BinaryGarbageGetsErrorsNotCrashes) {
  HostileFixture fixture("garbage");
  fixture.start();
  RawConn attacker(fixture.socket_path);
  ASSERT_GE(attacker.fd, 0);

  // Control bytes inside a line: parse error, reply, connection lives.
  ASSERT_TRUE(attacker.send_all("\x01\x02\x03\n"));
  EXPECT_EQ(attacker.read_line().rfind("err", 0), 0u);
  // Embedded NUL: same.
  ASSERT_TRUE(attacker.send_all(std::string("ping\0x=1\n", 9)));
  EXPECT_EQ(attacker.read_line().rfind("err", 0), 0u);
  // CRLF framing is accepted (the \r is stripped, not a parse error).
  ASSERT_TRUE(attacker.send_all("ping\r\n"));
  EXPECT_EQ(attacker.read_line(), "ok pong");
  // Blank CRLF lines are ignored, and the connection still serves.
  ASSERT_TRUE(attacker.send_all("\r\n\r\nping\n"));
  EXPECT_EQ(attacker.read_line(), "ok pong");
  EXPECT_EQ(fixture.stop(), 0);
}

TEST(HostileClient, ReadsKeepServingThroughTheServerWhileReadOnly) {
  HostileFixture fixture("readonly_reads");
  FaultFs fs;
  fixture.config.service.vfs = &fs;
  fixture.config.service.io.flush_retries = 0;
  // Park the re-arm probe far in the future so the daemon demonstrably
  // stays in read-only mode for the whole test.
  fixture.config.service.io.probe_backoff_ms = 60'000;
  fixture.start();
  Client client = fixture.client();
  ASSERT_TRUE(client
                  .request("tenant name=t0 topology=omega n=8 seed=7 "
                           "scheduler=breaker")
                  .ok);
  ASSERT_TRUE(client.request("req tenant=t0 id=1 proc=0 prio=0").ok);
  const std::string durable_stats =
      client.request("stats tenant=t0").body;

  FaultFs::Rule rule;
  rule.op = FaultFs::Rule::Op::kWrite;
  rule.path_contains = "journal";
  rule.error = ENOSPC;
  fs.schedule(rule);

  // The tripping batch gets the commit-failure refusal.
  const Response tripped = client.request("req tenant=t0 id=2 proc=0 prio=0");
  EXPECT_FALSE(tripped.ok);
  EXPECT_EQ(tripped.body.rfind("code=read-only", 0), 0u) << tripped.body;

  // Reads keep serving through the live server: same socket, same daemon,
  // same degraded state. A reads-only batch must not be rewritten into
  // commit refusals.
  const Response stats = client.request("stats tenant=t0");
  ASSERT_TRUE(stats.ok) << stats.body;
  EXPECT_EQ(stats.body, durable_stats);
  const Response io_status = client.request("io-status");
  ASSERT_TRUE(io_status.ok) << io_status.body;
  EXPECT_NE(io_status.body.find("mode=read-only"), std::string::npos)
      << io_status.body;

  // Later mutations get the dispatch-side refusal pointing at the re-arm.
  const Response refused = client.request("req tenant=t0 id=3 proc=0 prio=0");
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.body.rfind("code=read-only", 0), 0u) << refused.body;

  // A SIGTERM drain while read-only still exits 0 (durable prefix rule).
  EXPECT_EQ(fixture.stop(), 0);
}

// --- protocol parser edge cases -------------------------------------------

TEST(SvcProtocol, RejectsControlCharactersAndEmbeddedNul) {
  EXPECT_THROW((void)parse_command(std::string("ping\0", 5)),
               std::invalid_argument);
  EXPECT_THROW((void)parse_command("ping\r"), std::invalid_argument);
  EXPECT_THROW((void)parse_command("pi\tng"), std::invalid_argument);
  EXPECT_THROW((void)parse_command("req tenant=\x7f"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_command(""), std::invalid_argument);
  EXPECT_THROW((void)parse_command("   "), std::invalid_argument);
}

TEST(SvcProtocol, RejectsMalformedPairsButKeepsOrder) {
  EXPECT_THROW((void)parse_command("req tenant"), std::invalid_argument);
  EXPECT_THROW((void)parse_command("req =value"), std::invalid_argument);
  const Command command = parse_command("req a=1  b=2 c==x");
  EXPECT_EQ(command.verb, "req");
  ASSERT_EQ(command.args.size(), 3u);
  EXPECT_EQ(command.args[2].second, "=x");  // Value may contain '='.
}

TEST(SvcProtocol, RefusedResponsesCarryAMachineMatchableCode) {
  const Response refused = Response::refused("read-only", "disk gone");
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.body, "code=read-only disk gone");
  EXPECT_EQ(refused.wire(), "err code=read-only disk gone\n");
  // Newlines smuggled into an error reason cannot desync the framing.
  const Response smuggled = Response::error("a\nb\rc");
  EXPECT_EQ(smuggled.wire(), "err a b c\n");
}

}  // namespace
}  // namespace rsin::svc
