#include "sim/analytic.hpp"

#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "sim/static_experiment.hpp"
#include "topo/builders.hpp"

namespace rsin::sim {
namespace {

TEST(Analytic, StageRecurrenceKnownValues) {
  // 2x2 at full load: 1 - (1 - 1/2)^2 = 0.75.
  EXPECT_DOUBLE_EQ(delta_stage_rate(1.0, 2, 2), 0.75);
  // Zero load stays zero; load is preserved through an idle network.
  EXPECT_DOUBLE_EQ(delta_stage_rate(0.0, 2, 2), 0.0);
  EXPECT_DOUBLE_EQ(banyan_output_rate(0.3, 0), 0.3);
}

TEST(Analytic, ThreeStageFullLoad) {
  // p1=0.75, p2=1-(1-0.375)^2=0.609375, p3=1-(1-0.3046875)^2.
  const double p3 = banyan_output_rate(1.0, 3);
  EXPECT_NEAR(p3, 1.0 - (1.0 - 0.609375 / 2) * (1.0 - 0.609375 / 2), 1e-12);
  EXPECT_NEAR(banyan_acceptance(1.0, 3), p3, 1e-12);
}

TEST(Analytic, AcceptanceDecreasesWithStages) {
  double previous = 1.0;
  for (int stages = 1; stages <= 8; ++stages) {
    const double acceptance = banyan_acceptance(0.9, stages);
    EXPECT_LT(acceptance, previous);
    previous = acceptance;
  }
}

TEST(Analytic, BlockingIncreasesWithLoad) {
  double previous = -1.0;
  for (const double load : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double blocking = banyan_blocking(load, 3);
    EXPECT_GT(blocking, previous);
    previous = blocking;
  }
}

TEST(Analytic, ZeroLoadNeverBlocks) {
  EXPECT_DOUBLE_EQ(banyan_blocking(0.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(banyan_acceptance(0.0, 5), 1.0);
}

TEST(Analytic, RejectsBadArguments) {
  EXPECT_THROW(delta_stage_rate(1.5, 2, 2), std::invalid_argument);
  EXPECT_THROW(delta_stage_rate(-0.1, 2, 2), std::invalid_argument);
  EXPECT_THROW(delta_stage_rate(0.5, 0, 2), std::invalid_argument);
  EXPECT_THROW(banyan_output_rate(0.5, -1), std::invalid_argument);
}

TEST(Analytic, TracksMeasuredIndependentAddressMapping) {
  // The analytic model assumes independent random destinations; the
  // measured independent-destination baseline on an 8x8 Omega must land in
  // the same region (within a few points — the model ignores that our
  // trials only route to *free* resources).
  const topo::Network net = topo::make_omega(8);
  core::RandomScheduler scheduler(util::Rng(3),
                                  /*independent_destinations=*/true);
  StaticExperimentConfig config;
  config.trials = 3000;
  config.request_probability = 1.0;
  config.free_probability = 1.0;
  config.seed = 9;
  const auto measured = run_static_experiment(net, scheduler, config);
  const double analytic = banyan_blocking(1.0, 3);
  EXPECT_NEAR(measured.blocking_probability(), analytic, 0.08)
      << "measured " << measured.blocking_probability() << " vs analytic "
      << analytic;
}

TEST(Analytic, OptimalSchedulingBeatsTheAnalyticBound) {
  // The whole point of the paper: distributed optimal scheduling blocks
  // far less than conventional random address mapping predicts.
  const topo::Network net = topo::make_omega(8);
  core::MaxFlowScheduler scheduler;
  StaticExperimentConfig config;
  config.trials = 1500;
  config.request_probability = 0.75;
  config.free_probability = 0.75;
  config.seed = 10;
  const auto measured = run_static_experiment(net, scheduler, config);
  EXPECT_LT(measured.blocking_probability(),
            banyan_blocking(0.75, 3) / 4.0);
}

}  // namespace
}  // namespace rsin::sim
