add_test([=[Umbrella.EveryLayerIsUsableTogether]=]  /root/repo/build-asan/tests/test_umbrella [==[--gtest_filter=Umbrella.EveryLayerIsUsableTogether]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Umbrella.EveryLayerIsUsableTogether]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build-asan/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_umbrella_TESTS Umbrella.EveryLayerIsUsableTogether)
