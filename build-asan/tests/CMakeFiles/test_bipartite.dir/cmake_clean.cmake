file(REMOVE_RECURSE
  "CMakeFiles/test_bipartite.dir/test_bipartite.cpp.o"
  "CMakeFiles/test_bipartite.dir/test_bipartite.cpp.o.d"
  "test_bipartite"
  "test_bipartite.pdb"
  "test_bipartite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bipartite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
