# Empty dependencies file for test_bipartite.
# This may be replaced when dependencies are built.
