# Empty dependencies file for test_element_machine.
# This may be replaced when dependencies are built.
