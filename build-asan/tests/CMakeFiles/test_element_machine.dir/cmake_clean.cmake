file(REMOVE_RECURSE
  "CMakeFiles/test_element_machine.dir/test_element_machine.cpp.o"
  "CMakeFiles/test_element_machine.dir/test_element_machine.cpp.o.d"
  "test_element_machine"
  "test_element_machine.pdb"
  "test_element_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_element_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
