# Empty dependencies file for test_max_flow.
# This may be replaced when dependencies are built.
