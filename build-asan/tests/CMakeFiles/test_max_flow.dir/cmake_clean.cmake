file(REMOVE_RECURSE
  "CMakeFiles/test_max_flow.dir/test_max_flow.cpp.o"
  "CMakeFiles/test_max_flow.dir/test_max_flow.cpp.o.d"
  "test_max_flow"
  "test_max_flow.pdb"
  "test_max_flow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_max_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
