file(REMOVE_RECURSE
  "CMakeFiles/test_topo_network.dir/test_topo_network.cpp.o"
  "CMakeFiles/test_topo_network.dir/test_topo_network.cpp.o.d"
  "test_topo_network"
  "test_topo_network.pdb"
  "test_topo_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topo_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
