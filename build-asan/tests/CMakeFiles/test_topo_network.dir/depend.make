# Empty dependencies file for test_topo_network.
# This may be replaced when dependencies are built.
