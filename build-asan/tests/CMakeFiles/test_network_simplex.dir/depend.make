# Empty dependencies file for test_network_simplex.
# This may be replaced when dependencies are built.
