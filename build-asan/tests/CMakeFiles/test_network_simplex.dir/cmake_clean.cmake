file(REMOVE_RECURSE
  "CMakeFiles/test_network_simplex.dir/test_network_simplex.cpp.o"
  "CMakeFiles/test_network_simplex.dir/test_network_simplex.cpp.o.d"
  "test_network_simplex"
  "test_network_simplex.pdb"
  "test_network_simplex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_simplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
