# Empty compiler generated dependencies file for test_static_experiment.
# This may be replaced when dependencies are built.
