file(REMOVE_RECURSE
  "CMakeFiles/test_static_experiment.dir/test_static_experiment.cpp.o"
  "CMakeFiles/test_static_experiment.dir/test_static_experiment.cpp.o.d"
  "test_static_experiment"
  "test_static_experiment.pdb"
  "test_static_experiment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
