# Empty dependencies file for test_tag_routing.
# This may be replaced when dependencies are built.
