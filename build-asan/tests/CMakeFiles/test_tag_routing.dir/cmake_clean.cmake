file(REMOVE_RECURSE
  "CMakeFiles/test_tag_routing.dir/test_tag_routing.cpp.o"
  "CMakeFiles/test_tag_routing.dir/test_tag_routing.cpp.o.d"
  "test_tag_routing"
  "test_tag_routing.pdb"
  "test_tag_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tag_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
