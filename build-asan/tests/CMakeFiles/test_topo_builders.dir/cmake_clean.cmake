file(REMOVE_RECURSE
  "CMakeFiles/test_topo_builders.dir/test_topo_builders.cpp.o"
  "CMakeFiles/test_topo_builders.dir/test_topo_builders.cpp.o.d"
  "test_topo_builders"
  "test_topo_builders.pdb"
  "test_topo_builders[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topo_builders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
