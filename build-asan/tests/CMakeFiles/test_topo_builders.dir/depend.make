# Empty dependencies file for test_topo_builders.
# This may be replaced when dependencies are built.
