# Empty dependencies file for test_token_machine.
# This may be replaced when dependencies are built.
