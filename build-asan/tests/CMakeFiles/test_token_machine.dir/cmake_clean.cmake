file(REMOVE_RECURSE
  "CMakeFiles/test_token_machine.dir/test_token_machine.cpp.o"
  "CMakeFiles/test_token_machine.dir/test_token_machine.cpp.o.d"
  "test_token_machine"
  "test_token_machine.pdb"
  "test_token_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_token_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
