file(REMOVE_RECURSE
  "CMakeFiles/test_switch_settings.dir/test_switch_settings.cpp.o"
  "CMakeFiles/test_switch_settings.dir/test_switch_settings.cpp.o.d"
  "test_switch_settings"
  "test_switch_settings.pdb"
  "test_switch_settings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switch_settings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
