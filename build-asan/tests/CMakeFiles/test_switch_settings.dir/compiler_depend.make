# Empty compiler generated dependencies file for test_switch_settings.
# This may be replaced when dependencies are built.
