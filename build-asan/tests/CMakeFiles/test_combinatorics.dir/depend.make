# Empty dependencies file for test_combinatorics.
# This may be replaced when dependencies are built.
