file(REMOVE_RECURSE
  "CMakeFiles/test_combinatorics.dir/test_combinatorics.cpp.o"
  "CMakeFiles/test_combinatorics.dir/test_combinatorics.cpp.o.d"
  "test_combinatorics"
  "test_combinatorics.pdb"
  "test_combinatorics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_combinatorics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
