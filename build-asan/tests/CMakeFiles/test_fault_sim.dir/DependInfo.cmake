
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fault_sim.cpp" "tests/CMakeFiles/test_fault_sim.dir/test_fault_sim.cpp.o" "gcc" "tests/CMakeFiles/test_fault_sim.dir/test_fault_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/rsin_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/fault/CMakeFiles/rsin_fault.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/flow/CMakeFiles/rsin_flow.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lp/CMakeFiles/rsin_lp.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/rsin_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/token/CMakeFiles/rsin_token.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/topo/CMakeFiles/rsin_topo.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/rsin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
