file(REMOVE_RECURSE
  "CMakeFiles/test_benes_routing.dir/test_benes_routing.cpp.o"
  "CMakeFiles/test_benes_routing.dir/test_benes_routing.cpp.o.d"
  "test_benes_routing"
  "test_benes_routing.pdb"
  "test_benes_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benes_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
