# Empty compiler generated dependencies file for test_benes_routing.
# This may be replaced when dependencies are built.
