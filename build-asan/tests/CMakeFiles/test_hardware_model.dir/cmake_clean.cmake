file(REMOVE_RECURSE
  "CMakeFiles/test_hardware_model.dir/test_hardware_model.cpp.o"
  "CMakeFiles/test_hardware_model.dir/test_hardware_model.cpp.o.d"
  "test_hardware_model"
  "test_hardware_model.pdb"
  "test_hardware_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hardware_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
