# Empty compiler generated dependencies file for test_hardware_model.
# This may be replaced when dependencies are built.
