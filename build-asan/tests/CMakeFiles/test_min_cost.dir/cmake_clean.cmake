file(REMOVE_RECURSE
  "CMakeFiles/test_min_cost.dir/test_min_cost.cpp.o"
  "CMakeFiles/test_min_cost.dir/test_min_cost.cpp.o.d"
  "test_min_cost"
  "test_min_cost.pdb"
  "test_min_cost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_min_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
