# Empty dependencies file for test_min_cost.
# This may be replaced when dependencies are built.
