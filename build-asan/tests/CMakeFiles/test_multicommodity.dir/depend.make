# Empty dependencies file for test_multicommodity.
# This may be replaced when dependencies are built.
