file(REMOVE_RECURSE
  "CMakeFiles/test_multicommodity.dir/test_multicommodity.cpp.o"
  "CMakeFiles/test_multicommodity.dir/test_multicommodity.cpp.o.d"
  "test_multicommodity"
  "test_multicommodity.pdb"
  "test_multicommodity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multicommodity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
