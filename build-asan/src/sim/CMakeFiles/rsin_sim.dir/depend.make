# Empty dependencies file for rsin_sim.
# This may be replaced when dependencies are built.
