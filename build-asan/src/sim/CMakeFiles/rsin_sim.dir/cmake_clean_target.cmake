file(REMOVE_RECURSE
  "librsin_sim.a"
)
