file(REMOVE_RECURSE
  "CMakeFiles/rsin_sim.dir/analytic.cpp.o"
  "CMakeFiles/rsin_sim.dir/analytic.cpp.o.d"
  "CMakeFiles/rsin_sim.dir/static_experiment.cpp.o"
  "CMakeFiles/rsin_sim.dir/static_experiment.cpp.o.d"
  "CMakeFiles/rsin_sim.dir/system_sim.cpp.o"
  "CMakeFiles/rsin_sim.dir/system_sim.cpp.o.d"
  "librsin_sim.a"
  "librsin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
