# Empty dependencies file for rsin_core.
# This may be replaced when dependencies are built.
