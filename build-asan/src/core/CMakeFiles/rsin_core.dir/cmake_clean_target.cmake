file(REMOVE_RECURSE
  "librsin_core.a"
)
