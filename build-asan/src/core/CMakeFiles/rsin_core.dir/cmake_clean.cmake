file(REMOVE_RECURSE
  "CMakeFiles/rsin_core.dir/hetero.cpp.o"
  "CMakeFiles/rsin_core.dir/hetero.cpp.o.d"
  "CMakeFiles/rsin_core.dir/problem.cpp.o"
  "CMakeFiles/rsin_core.dir/problem.cpp.o.d"
  "CMakeFiles/rsin_core.dir/routing.cpp.o"
  "CMakeFiles/rsin_core.dir/routing.cpp.o.d"
  "CMakeFiles/rsin_core.dir/schedule.cpp.o"
  "CMakeFiles/rsin_core.dir/schedule.cpp.o.d"
  "CMakeFiles/rsin_core.dir/scheduler.cpp.o"
  "CMakeFiles/rsin_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/rsin_core.dir/transform.cpp.o"
  "CMakeFiles/rsin_core.dir/transform.cpp.o.d"
  "librsin_core.a"
  "librsin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
