
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/hetero.cpp" "src/core/CMakeFiles/rsin_core.dir/hetero.cpp.o" "gcc" "src/core/CMakeFiles/rsin_core.dir/hetero.cpp.o.d"
  "/root/repo/src/core/problem.cpp" "src/core/CMakeFiles/rsin_core.dir/problem.cpp.o" "gcc" "src/core/CMakeFiles/rsin_core.dir/problem.cpp.o.d"
  "/root/repo/src/core/routing.cpp" "src/core/CMakeFiles/rsin_core.dir/routing.cpp.o" "gcc" "src/core/CMakeFiles/rsin_core.dir/routing.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/rsin_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/rsin_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/rsin_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/rsin_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/transform.cpp" "src/core/CMakeFiles/rsin_core.dir/transform.cpp.o" "gcc" "src/core/CMakeFiles/rsin_core.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/flow/CMakeFiles/rsin_flow.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/topo/CMakeFiles/rsin_topo.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/rsin_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lp/CMakeFiles/rsin_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
