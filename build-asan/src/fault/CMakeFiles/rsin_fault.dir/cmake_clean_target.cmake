file(REMOVE_RECURSE
  "librsin_fault.a"
)
