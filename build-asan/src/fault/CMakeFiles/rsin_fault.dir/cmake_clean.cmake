file(REMOVE_RECURSE
  "CMakeFiles/rsin_fault.dir/fault_injector.cpp.o"
  "CMakeFiles/rsin_fault.dir/fault_injector.cpp.o.d"
  "librsin_fault.a"
  "librsin_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsin_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
