# Empty compiler generated dependencies file for rsin_fault.
# This may be replaced when dependencies are built.
