file(REMOVE_RECURSE
  "librsin_topo.a"
)
