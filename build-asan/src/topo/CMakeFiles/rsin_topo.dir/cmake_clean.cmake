file(REMOVE_RECURSE
  "CMakeFiles/rsin_topo.dir/benes_routing.cpp.o"
  "CMakeFiles/rsin_topo.dir/benes_routing.cpp.o.d"
  "CMakeFiles/rsin_topo.dir/builders.cpp.o"
  "CMakeFiles/rsin_topo.dir/builders.cpp.o.d"
  "CMakeFiles/rsin_topo.dir/dot_export.cpp.o"
  "CMakeFiles/rsin_topo.dir/dot_export.cpp.o.d"
  "CMakeFiles/rsin_topo.dir/network.cpp.o"
  "CMakeFiles/rsin_topo.dir/network.cpp.o.d"
  "CMakeFiles/rsin_topo.dir/switch_settings.cpp.o"
  "CMakeFiles/rsin_topo.dir/switch_settings.cpp.o.d"
  "CMakeFiles/rsin_topo.dir/tag_routing.cpp.o"
  "CMakeFiles/rsin_topo.dir/tag_routing.cpp.o.d"
  "librsin_topo.a"
  "librsin_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsin_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
