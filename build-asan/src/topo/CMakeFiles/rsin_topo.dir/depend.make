# Empty dependencies file for rsin_topo.
# This may be replaced when dependencies are built.
