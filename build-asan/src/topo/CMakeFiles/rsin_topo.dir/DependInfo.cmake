
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/benes_routing.cpp" "src/topo/CMakeFiles/rsin_topo.dir/benes_routing.cpp.o" "gcc" "src/topo/CMakeFiles/rsin_topo.dir/benes_routing.cpp.o.d"
  "/root/repo/src/topo/builders.cpp" "src/topo/CMakeFiles/rsin_topo.dir/builders.cpp.o" "gcc" "src/topo/CMakeFiles/rsin_topo.dir/builders.cpp.o.d"
  "/root/repo/src/topo/dot_export.cpp" "src/topo/CMakeFiles/rsin_topo.dir/dot_export.cpp.o" "gcc" "src/topo/CMakeFiles/rsin_topo.dir/dot_export.cpp.o.d"
  "/root/repo/src/topo/network.cpp" "src/topo/CMakeFiles/rsin_topo.dir/network.cpp.o" "gcc" "src/topo/CMakeFiles/rsin_topo.dir/network.cpp.o.d"
  "/root/repo/src/topo/switch_settings.cpp" "src/topo/CMakeFiles/rsin_topo.dir/switch_settings.cpp.o" "gcc" "src/topo/CMakeFiles/rsin_topo.dir/switch_settings.cpp.o.d"
  "/root/repo/src/topo/tag_routing.cpp" "src/topo/CMakeFiles/rsin_topo.dir/tag_routing.cpp.o" "gcc" "src/topo/CMakeFiles/rsin_topo.dir/tag_routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/rsin_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/flow/CMakeFiles/rsin_flow.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lp/CMakeFiles/rsin_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
