# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "Debug")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-asan/src/util/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-asan/src/flow/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-asan/src/lp/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-asan/src/topo/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-asan/src/fault/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-asan/src/core/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-asan/src/token/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-asan/src/sim/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-asan/src/util/librsin_util.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-asan/src/flow/librsin_flow.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-asan/src/lp/librsin_lp.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-asan/src/topo/librsin_topo.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-asan/src/fault/librsin_fault.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-asan/src/core/librsin_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-asan/src/token/librsin_token.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-asan/src/sim/librsin_sim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/rsin" TYPE DIRECTORY FILES
    "/root/repo/src/util"
    "/root/repo/src/flow"
    "/root/repo/src/lp"
    "/root/repo/src/topo"
    "/root/repo/src/fault"
    "/root/repo/src/core"
    "/root/repo/src/token"
    "/root/repo/src/sim"
    FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/rsin" TYPE FILE FILES "/root/repo/src/rsin.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/rsin/rsin-config.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/rsin/rsin-config.cmake"
         "/root/repo/build-asan/src/CMakeFiles/Export/1439ce1140c465238a68743159959673/rsin-config.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/rsin/rsin-config-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/rsin/rsin-config.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/rsin" TYPE FILE FILES "/root/repo/build-asan/src/CMakeFiles/Export/1439ce1140c465238a68743159959673/rsin-config.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Dd][Ee][Bb][Uu][Gg])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/rsin" TYPE FILE FILES "/root/repo/build-asan/src/CMakeFiles/Export/1439ce1140c465238a68743159959673/rsin-config-debug.cmake")
  endif()
endif()

