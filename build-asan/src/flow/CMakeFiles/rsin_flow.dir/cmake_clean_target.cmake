file(REMOVE_RECURSE
  "librsin_flow.a"
)
