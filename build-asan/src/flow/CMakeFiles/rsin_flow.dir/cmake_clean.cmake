file(REMOVE_RECURSE
  "CMakeFiles/rsin_flow.dir/bipartite.cpp.o"
  "CMakeFiles/rsin_flow.dir/bipartite.cpp.o.d"
  "CMakeFiles/rsin_flow.dir/decompose.cpp.o"
  "CMakeFiles/rsin_flow.dir/decompose.cpp.o.d"
  "CMakeFiles/rsin_flow.dir/max_flow.cpp.o"
  "CMakeFiles/rsin_flow.dir/max_flow.cpp.o.d"
  "CMakeFiles/rsin_flow.dir/min_cost.cpp.o"
  "CMakeFiles/rsin_flow.dir/min_cost.cpp.o.d"
  "CMakeFiles/rsin_flow.dir/min_cut.cpp.o"
  "CMakeFiles/rsin_flow.dir/min_cut.cpp.o.d"
  "CMakeFiles/rsin_flow.dir/multicommodity.cpp.o"
  "CMakeFiles/rsin_flow.dir/multicommodity.cpp.o.d"
  "CMakeFiles/rsin_flow.dir/network.cpp.o"
  "CMakeFiles/rsin_flow.dir/network.cpp.o.d"
  "CMakeFiles/rsin_flow.dir/network_simplex.cpp.o"
  "CMakeFiles/rsin_flow.dir/network_simplex.cpp.o.d"
  "CMakeFiles/rsin_flow.dir/out_of_kilter.cpp.o"
  "CMakeFiles/rsin_flow.dir/out_of_kilter.cpp.o.d"
  "CMakeFiles/rsin_flow.dir/push_relabel.cpp.o"
  "CMakeFiles/rsin_flow.dir/push_relabel.cpp.o.d"
  "CMakeFiles/rsin_flow.dir/residual.cpp.o"
  "CMakeFiles/rsin_flow.dir/residual.cpp.o.d"
  "CMakeFiles/rsin_flow.dir/validate.cpp.o"
  "CMakeFiles/rsin_flow.dir/validate.cpp.o.d"
  "librsin_flow.a"
  "librsin_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsin_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
