# Empty dependencies file for rsin_flow.
# This may be replaced when dependencies are built.
