
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/bipartite.cpp" "src/flow/CMakeFiles/rsin_flow.dir/bipartite.cpp.o" "gcc" "src/flow/CMakeFiles/rsin_flow.dir/bipartite.cpp.o.d"
  "/root/repo/src/flow/decompose.cpp" "src/flow/CMakeFiles/rsin_flow.dir/decompose.cpp.o" "gcc" "src/flow/CMakeFiles/rsin_flow.dir/decompose.cpp.o.d"
  "/root/repo/src/flow/max_flow.cpp" "src/flow/CMakeFiles/rsin_flow.dir/max_flow.cpp.o" "gcc" "src/flow/CMakeFiles/rsin_flow.dir/max_flow.cpp.o.d"
  "/root/repo/src/flow/min_cost.cpp" "src/flow/CMakeFiles/rsin_flow.dir/min_cost.cpp.o" "gcc" "src/flow/CMakeFiles/rsin_flow.dir/min_cost.cpp.o.d"
  "/root/repo/src/flow/min_cut.cpp" "src/flow/CMakeFiles/rsin_flow.dir/min_cut.cpp.o" "gcc" "src/flow/CMakeFiles/rsin_flow.dir/min_cut.cpp.o.d"
  "/root/repo/src/flow/multicommodity.cpp" "src/flow/CMakeFiles/rsin_flow.dir/multicommodity.cpp.o" "gcc" "src/flow/CMakeFiles/rsin_flow.dir/multicommodity.cpp.o.d"
  "/root/repo/src/flow/network.cpp" "src/flow/CMakeFiles/rsin_flow.dir/network.cpp.o" "gcc" "src/flow/CMakeFiles/rsin_flow.dir/network.cpp.o.d"
  "/root/repo/src/flow/network_simplex.cpp" "src/flow/CMakeFiles/rsin_flow.dir/network_simplex.cpp.o" "gcc" "src/flow/CMakeFiles/rsin_flow.dir/network_simplex.cpp.o.d"
  "/root/repo/src/flow/out_of_kilter.cpp" "src/flow/CMakeFiles/rsin_flow.dir/out_of_kilter.cpp.o" "gcc" "src/flow/CMakeFiles/rsin_flow.dir/out_of_kilter.cpp.o.d"
  "/root/repo/src/flow/push_relabel.cpp" "src/flow/CMakeFiles/rsin_flow.dir/push_relabel.cpp.o" "gcc" "src/flow/CMakeFiles/rsin_flow.dir/push_relabel.cpp.o.d"
  "/root/repo/src/flow/residual.cpp" "src/flow/CMakeFiles/rsin_flow.dir/residual.cpp.o" "gcc" "src/flow/CMakeFiles/rsin_flow.dir/residual.cpp.o.d"
  "/root/repo/src/flow/validate.cpp" "src/flow/CMakeFiles/rsin_flow.dir/validate.cpp.o" "gcc" "src/flow/CMakeFiles/rsin_flow.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/rsin_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lp/CMakeFiles/rsin_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
