#----------------------------------------------------------------
# Generated CMake target import file for configuration "Debug".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "rsin::rsin_util" for configuration "Debug"
set_property(TARGET rsin::rsin_util APPEND PROPERTY IMPORTED_CONFIGURATIONS DEBUG)
set_target_properties(rsin::rsin_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_DEBUG "CXX"
  IMPORTED_LOCATION_DEBUG "${_IMPORT_PREFIX}/lib/librsin_util.a"
  )

list(APPEND _cmake_import_check_targets rsin::rsin_util )
list(APPEND _cmake_import_check_files_for_rsin::rsin_util "${_IMPORT_PREFIX}/lib/librsin_util.a" )

# Import target "rsin::rsin_flow" for configuration "Debug"
set_property(TARGET rsin::rsin_flow APPEND PROPERTY IMPORTED_CONFIGURATIONS DEBUG)
set_target_properties(rsin::rsin_flow PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_DEBUG "CXX"
  IMPORTED_LOCATION_DEBUG "${_IMPORT_PREFIX}/lib/librsin_flow.a"
  )

list(APPEND _cmake_import_check_targets rsin::rsin_flow )
list(APPEND _cmake_import_check_files_for_rsin::rsin_flow "${_IMPORT_PREFIX}/lib/librsin_flow.a" )

# Import target "rsin::rsin_lp" for configuration "Debug"
set_property(TARGET rsin::rsin_lp APPEND PROPERTY IMPORTED_CONFIGURATIONS DEBUG)
set_target_properties(rsin::rsin_lp PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_DEBUG "CXX"
  IMPORTED_LOCATION_DEBUG "${_IMPORT_PREFIX}/lib/librsin_lp.a"
  )

list(APPEND _cmake_import_check_targets rsin::rsin_lp )
list(APPEND _cmake_import_check_files_for_rsin::rsin_lp "${_IMPORT_PREFIX}/lib/librsin_lp.a" )

# Import target "rsin::rsin_topo" for configuration "Debug"
set_property(TARGET rsin::rsin_topo APPEND PROPERTY IMPORTED_CONFIGURATIONS DEBUG)
set_target_properties(rsin::rsin_topo PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_DEBUG "CXX"
  IMPORTED_LOCATION_DEBUG "${_IMPORT_PREFIX}/lib/librsin_topo.a"
  )

list(APPEND _cmake_import_check_targets rsin::rsin_topo )
list(APPEND _cmake_import_check_files_for_rsin::rsin_topo "${_IMPORT_PREFIX}/lib/librsin_topo.a" )

# Import target "rsin::rsin_fault" for configuration "Debug"
set_property(TARGET rsin::rsin_fault APPEND PROPERTY IMPORTED_CONFIGURATIONS DEBUG)
set_target_properties(rsin::rsin_fault PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_DEBUG "CXX"
  IMPORTED_LOCATION_DEBUG "${_IMPORT_PREFIX}/lib/librsin_fault.a"
  )

list(APPEND _cmake_import_check_targets rsin::rsin_fault )
list(APPEND _cmake_import_check_files_for_rsin::rsin_fault "${_IMPORT_PREFIX}/lib/librsin_fault.a" )

# Import target "rsin::rsin_core" for configuration "Debug"
set_property(TARGET rsin::rsin_core APPEND PROPERTY IMPORTED_CONFIGURATIONS DEBUG)
set_target_properties(rsin::rsin_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_DEBUG "CXX"
  IMPORTED_LOCATION_DEBUG "${_IMPORT_PREFIX}/lib/librsin_core.a"
  )

list(APPEND _cmake_import_check_targets rsin::rsin_core )
list(APPEND _cmake_import_check_files_for_rsin::rsin_core "${_IMPORT_PREFIX}/lib/librsin_core.a" )

# Import target "rsin::rsin_token" for configuration "Debug"
set_property(TARGET rsin::rsin_token APPEND PROPERTY IMPORTED_CONFIGURATIONS DEBUG)
set_target_properties(rsin::rsin_token PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_DEBUG "CXX"
  IMPORTED_LOCATION_DEBUG "${_IMPORT_PREFIX}/lib/librsin_token.a"
  )

list(APPEND _cmake_import_check_targets rsin::rsin_token )
list(APPEND _cmake_import_check_files_for_rsin::rsin_token "${_IMPORT_PREFIX}/lib/librsin_token.a" )

# Import target "rsin::rsin_sim" for configuration "Debug"
set_property(TARGET rsin::rsin_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS DEBUG)
set_target_properties(rsin::rsin_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_DEBUG "CXX"
  IMPORTED_LOCATION_DEBUG "${_IMPORT_PREFIX}/lib/librsin_sim.a"
  )

list(APPEND _cmake_import_check_targets rsin::rsin_sim )
list(APPEND _cmake_import_check_files_for_rsin::rsin_sim "${_IMPORT_PREFIX}/lib/librsin_sim.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
