file(REMOVE_RECURSE
  "librsin_token.a"
)
