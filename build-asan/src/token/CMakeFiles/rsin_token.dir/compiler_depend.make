# Empty compiler generated dependencies file for rsin_token.
# This may be replaced when dependencies are built.
