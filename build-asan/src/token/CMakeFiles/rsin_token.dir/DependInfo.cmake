
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/token/element_machine.cpp" "src/token/CMakeFiles/rsin_token.dir/element_machine.cpp.o" "gcc" "src/token/CMakeFiles/rsin_token.dir/element_machine.cpp.o.d"
  "/root/repo/src/token/hardware_model.cpp" "src/token/CMakeFiles/rsin_token.dir/hardware_model.cpp.o" "gcc" "src/token/CMakeFiles/rsin_token.dir/hardware_model.cpp.o.d"
  "/root/repo/src/token/monitor.cpp" "src/token/CMakeFiles/rsin_token.dir/monitor.cpp.o" "gcc" "src/token/CMakeFiles/rsin_token.dir/monitor.cpp.o.d"
  "/root/repo/src/token/registered_trace.cpp" "src/token/CMakeFiles/rsin_token.dir/registered_trace.cpp.o" "gcc" "src/token/CMakeFiles/rsin_token.dir/registered_trace.cpp.o.d"
  "/root/repo/src/token/status_bus.cpp" "src/token/CMakeFiles/rsin_token.dir/status_bus.cpp.o" "gcc" "src/token/CMakeFiles/rsin_token.dir/status_bus.cpp.o.d"
  "/root/repo/src/token/token_machine.cpp" "src/token/CMakeFiles/rsin_token.dir/token_machine.cpp.o" "gcc" "src/token/CMakeFiles/rsin_token.dir/token_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/rsin_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/topo/CMakeFiles/rsin_topo.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/flow/CMakeFiles/rsin_flow.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lp/CMakeFiles/rsin_lp.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/rsin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
