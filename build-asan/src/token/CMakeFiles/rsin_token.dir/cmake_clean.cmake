file(REMOVE_RECURSE
  "CMakeFiles/rsin_token.dir/element_machine.cpp.o"
  "CMakeFiles/rsin_token.dir/element_machine.cpp.o.d"
  "CMakeFiles/rsin_token.dir/hardware_model.cpp.o"
  "CMakeFiles/rsin_token.dir/hardware_model.cpp.o.d"
  "CMakeFiles/rsin_token.dir/monitor.cpp.o"
  "CMakeFiles/rsin_token.dir/monitor.cpp.o.d"
  "CMakeFiles/rsin_token.dir/registered_trace.cpp.o"
  "CMakeFiles/rsin_token.dir/registered_trace.cpp.o.d"
  "CMakeFiles/rsin_token.dir/status_bus.cpp.o"
  "CMakeFiles/rsin_token.dir/status_bus.cpp.o.d"
  "CMakeFiles/rsin_token.dir/token_machine.cpp.o"
  "CMakeFiles/rsin_token.dir/token_machine.cpp.o.d"
  "librsin_token.a"
  "librsin_token.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsin_token.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
