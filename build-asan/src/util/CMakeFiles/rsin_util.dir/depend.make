# Empty dependencies file for rsin_util.
# This may be replaced when dependencies are built.
