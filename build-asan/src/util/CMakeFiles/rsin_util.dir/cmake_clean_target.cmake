file(REMOVE_RECURSE
  "librsin_util.a"
)
