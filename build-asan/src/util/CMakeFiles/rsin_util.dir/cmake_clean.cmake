file(REMOVE_RECURSE
  "CMakeFiles/rsin_util.dir/combinatorics.cpp.o"
  "CMakeFiles/rsin_util.dir/combinatorics.cpp.o.d"
  "CMakeFiles/rsin_util.dir/csv.cpp.o"
  "CMakeFiles/rsin_util.dir/csv.cpp.o.d"
  "CMakeFiles/rsin_util.dir/error.cpp.o"
  "CMakeFiles/rsin_util.dir/error.cpp.o.d"
  "CMakeFiles/rsin_util.dir/rng.cpp.o"
  "CMakeFiles/rsin_util.dir/rng.cpp.o.d"
  "CMakeFiles/rsin_util.dir/table.cpp.o"
  "CMakeFiles/rsin_util.dir/table.cpp.o.d"
  "librsin_util.a"
  "librsin_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsin_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
