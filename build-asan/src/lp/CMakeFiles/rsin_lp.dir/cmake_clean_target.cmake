file(REMOVE_RECURSE
  "librsin_lp.a"
)
