# Empty compiler generated dependencies file for rsin_lp.
# This may be replaced when dependencies are built.
