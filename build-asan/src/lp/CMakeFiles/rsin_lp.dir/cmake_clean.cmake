file(REMOVE_RECURSE
  "CMakeFiles/rsin_lp.dir/simplex.cpp.o"
  "CMakeFiles/rsin_lp.dir/simplex.cpp.o.d"
  "librsin_lp.a"
  "librsin_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsin_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
