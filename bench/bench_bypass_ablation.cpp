// E18 — ablation of Transformation 2's bypass cost function.
//
// DESIGN.md documents a deliberate design choice: the paper's exact cost
// assignment (T4) makes request priorities cost-neutral whenever F0 equals
// the number of requests — every source arc is saturated whether or not its
// request is allocated, so only resource *preferences* steer the optimum.
// The kPriorityWeighted extension adds the request's priority to its bypass
// arc, making urgency decide who wins under scarcity, at no loss of
// count-optimality (Theorem 3 still holds; tested).
//
// This ablation measures the consequence: over random scarce instances
// (more requests than resources), how often does the highest-priority
// request end up allocated under each mode, and what schedule cost results?
#include <algorithm>
#include <iostream>

#include "core/scheduler.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsin;
  std::cout << "=== E18: bypass cost ablation — paper's T4 vs "
               "priority-weighted extension ===\n\n";

  const topo::Network net = topo::make_omega(8);
  util::Table table({"mode", "algorithm", "instances", "count-optimal",
                     "top-priority allocated", "mean schedule cost"});

  struct Config {
    core::BypassCostMode mode;
    flow::MinCostFlowAlgorithm algorithm;
    const char* mode_name;
    const char* algorithm_name;
  };
  for (const Config& config :
       {Config{core::BypassCostMode::kPaper, flow::MinCostFlowAlgorithm::kSsp,
               "paper (T4)", "ssp"},
        Config{core::BypassCostMode::kPaper,
               flow::MinCostFlowAlgorithm::kCycleCancel, "paper (T4)",
               "cycle-cancel"},
        Config{core::BypassCostMode::kPriorityWeighted,
               flow::MinCostFlowAlgorithm::kSsp, "priority-weighted", "ssp"},
        Config{core::BypassCostMode::kPriorityWeighted,
               flow::MinCostFlowAlgorithm::kCycleCancel, "priority-weighted",
               "cycle-cancel"}}) {
    util::Rng rng(1234);  // identical instance stream for every row
    core::MinCostScheduler scheduler(config.algorithm, config.mode);
    core::MaxFlowScheduler max_flow;

    const int rounds = 400;
    int count_optimal = 0;
    int top_priority_won = 0;
    int contested = 0;
    std::int64_t total_cost = 0;
    for (int round = 0; round < rounds; ++round) {
      core::Problem problem;
      problem.network = &net;
      for (topo::ProcessorId p = 0; p < 8; ++p) {
        if (!rng.bernoulli(0.8)) continue;
        problem.requests.push_back(
            {p, static_cast<std::int32_t>(rng.uniform_int(1, 10)), 0});
      }
      for (topo::ResourceId r = 0; r < 8; ++r) {
        if (!rng.bernoulli(0.35)) continue;  // scarcity
        problem.free_resources.push_back(
            {r, static_cast<std::int32_t>(rng.uniform_int(1, 10)), 0});
      }
      if (problem.requests.size() <= problem.free_resources.size() ||
          problem.free_resources.empty()) {
        continue;  // only contested instances are informative
      }
      ++contested;

      const core::ScheduleResult result = scheduler.schedule(problem);
      total_cost += result.cost;
      if (result.allocated() == max_flow.schedule(problem).allocated()) {
        ++count_optimal;
      }
      const auto top = std::max_element(
          problem.requests.begin(), problem.requests.end(),
          [](const core::Request& a, const core::Request& b) {
            return a.priority < b.priority;
          });
      if (result.processor_allocated(top->processor)) ++top_priority_won;
    }
    table.add(config.mode_name, config.algorithm_name, contested,
              count_optimal, top_priority_won,
              util::fixed(static_cast<double>(total_cost) / contested, 2));
  }
  std::cout << table
            << "\nevery row is count-optimal (Theorem 3). Under the paper's "
               "exact cost function the flow\nobjective is priority-neutral, "
               "so WHICH request wins is an algorithmic accident: SSP's\n"
               "cheapest-path order happens to favor urgent requests, while "
               "cycle canceling settles on\nother equal-cost optima. The "
               "priority-weighted bypass makes urgency part of the\n"
               "objective, so every optimal solver protects the top-priority "
               "request and reaches the\nminimum schedule cost.\n";
  return 0;
}
