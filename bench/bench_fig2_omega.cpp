// E1 — Fig. 2 of the paper: the 8x8 Omega scheduling scenario and its
// Transformation-1 flow network.
//
// Paper statement: with p1,p3,p5,p7,p8 requesting, r1,r3,r5,r7,r8 free and
// circuits p2-r6, p4-r4 occupying links, an optimal mapping allocates all
// five resources while an arbitrary mapping strands requests. This binary
// regenerates the scenario, prints the flow network of Fig. 2(b), and
// contrasts the optimal scheduler with the paper's "bad" mapping.
#include <iostream>

#include "core/routing.hpp"
#include "core/scheduler.hpp"
#include "core/transform.hpp"
#include "flow/max_flow.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsin;
  std::cout << "=== E1 / Fig. 2: optimal request-resource mapping on an 8x8 "
               "Omega ===\n\n";

  topo::Network network = topo::make_omega(8);
  for (const auto& [p, r] : {std::pair<int, int>{1, 5}, {3, 3}}) {
    const auto paths = core::enumerate_free_paths(network, p, r);
    network.establish(paths.front());
  }
  const core::Problem problem =
      core::make_problem(network, {0, 2, 4, 6, 7}, {0, 2, 4, 6, 7});

  // Fig. 2(b): the transformed flow network.
  core::TransformResult transformed = core::transformation1(problem);
  std::cout << "Transformation 1 produces " << transformed.net.node_count()
            << " nodes / " << transformed.net.arc_count()
            << " unit-capacity arcs (occupied links and busy resources "
               "excluded per T3/T4)\n";

  const auto flow_stats = flow::max_flow_dinic(transformed.net);
  std::cout << "max flow value = " << flow_stats.value << " ("
            << flow_stats.phases << " Dinic phases, "
            << flow_stats.augmentations << " augmenting paths)\n\n";

  core::MaxFlowScheduler optimal;
  const core::ScheduleResult best = optimal.schedule(problem);

  util::Table table({"mapping", "allocated", "note"});
  table.add("max-flow optimal", best.allocated(), "paper: 5/5");

  // The paper's arbitrary mapping {(p1,r1),(p3,r5),(p5,r3),(p7,r7),(p8,r8)}
  // applied greedily in order.
  {
    topo::Network work = network;
    int allocated = 0;
    for (const auto& [p, r] : {std::pair<int, int>{0, 0},
                               {2, 4},
                               {4, 2},
                               {6, 6},
                               {7, 7}}) {
      const auto paths = core::enumerate_free_paths(work, p, r);
      if (paths.empty()) continue;
      work.establish(paths.front());
      ++allocated;
    }
    table.add("paper's arbitrary mapping", allocated,
              "paper: 4/5 (its wiring); strands requests on ours too");
  }
  // One of the paper's listed optimal mappings.
  {
    topo::Network work = network;
    int allocated = 0;
    for (const auto& [p, r] : {std::pair<int, int>{0, 2},
                               {2, 4},
                               {4, 6},
                               {6, 0},
                               {7, 7}}) {
      const auto paths = core::enumerate_free_paths(work, p, r);
      if (paths.empty()) continue;
      work.establish(paths.front());
      ++allocated;
    }
    table.add("paper's optimal mapping A", allocated,
              "{(p1,r3),(p3,r5),(p5,r7),(p7,r1),(p8,r8)}");
  }
  std::cout << table << "\nOptimal assignments:\n";
  for (const core::Assignment& a : best.assignments) {
    std::cout << "  p" << a.request.processor + 1 << " -> r"
              << a.resource.resource + 1 << "\n";
  }
  return 0;
}
