// E15 — the paper's conclusion: "the proposed method ... is applicable to
// networks with multiple paths between source-destination pairs, such as
// the data manipulator, augmented data manipulator, and gamma network. The
// resource utilization, however, will depend on the network configuration."
//
// We run the same scheduling disciplines over the whole topology zoo —
// unique-path delta networks, the redundant-path gamma, the rearrangeable
// Benes, and the nonblocking crossbar — and tabulate blocking. Shape to
// verify: utilization depends on the fabric; redundancy shrinks both
// absolute blocking and the optimal-vs-heuristic gap; the flow method works
// unchanged on every one of them.
#include <iostream>

#include "core/scheduler.hpp"
#include "sim/static_experiment.hpp"
#include "token/token_machine.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsin;
  std::cout << "=== E15: every topology, every discipline (8x8, load 0.75) "
               "===\n\n";

  util::Table table({"network", "paths", "optimal %", "token-machine %",
                     "first-fit %", "address-mapped %"});

  struct Row {
    const char* name;
    const char* paths;
  };
  for (const Row& row : {Row{"omega", "1"}, Row{"baseline", "1"},
                         Row{"cube", "1"}, Row{"butterfly", "1"},
                         Row{"gamma", ">=2"}, Row{"benes", "4"},
                         Row{"crossbar", "1 (non-blocking)"}}) {
    const topo::Network net = topo::make_named(row.name, 8);
    sim::StaticExperimentConfig config;
    config.trials = 1500;
    config.request_probability = 0.75;
    config.free_probability = 0.75;
    config.seed = 99;

    core::MaxFlowScheduler optimal;
    token::TokenScheduler token_machine;
    core::GreedyScheduler greedy;
    core::RandomScheduler address_mapped{util::Rng(101)};
    const auto opt = sim::run_static_experiment(net, optimal, config);
    const auto tok = sim::run_static_experiment(net, token_machine, config);
    const auto fit = sim::run_static_experiment(net, greedy, config);
    const auto adr = sim::run_static_experiment(net, address_mapped, config);
    table.add(row.name, row.paths, util::pct(opt.blocking_probability()),
              util::pct(tok.blocking_probability()),
              util::pct(fit.blocking_probability()),
              util::pct(adr.blocking_probability()));
  }
  std::cout << table
            << "\nthe token machine matches the optimal column exactly (it "
               "realizes the same max-flow); redundant-path fabrics push "
               "blocking toward the crossbar's zero\n";
  return 0;
}
