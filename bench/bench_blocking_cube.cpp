// E2 — the paper's headline numbers (Section II): average blocking
// probability of an MRSIN embedded in an 8x8 cube network is ~2% with
// optimal scheduling versus ~20% with heuristic routing, and below 5% for
// an Omega.
//
// We regenerate the Monte-Carlo experiment over request/free densities.
// Correspondence: our "address-mapped" baseline (random destination chosen
// before routing, no rerouting — the conventional scheme the paper argues
// against) lands in the 12-30% band; the stronger first-fit routing
// heuristic lands at 2-5%; the flow-optimal scheduler stays below 1%.
// Ordering and roughly-10x gap match the paper.
#include <iostream>

#include "core/scheduler.hpp"
#include "sim/static_experiment.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsin;
  std::cout << "=== E2: blocking probability, 8x8 cube & Omega MRSIN "
               "(network initially free) ===\n"
               "paper: optimal ~2% (cube), heuristic ~20%, Omega < 5%\n\n";

  util::Table table({"network", "p(request)=p(free)", "optimal %",
                     "first-fit %", "address-mapped %", "opt CI95 +/-"});

  for (const char* topology : {"cube", "omega", "baseline", "butterfly"}) {
    for (const double density : {0.25, 0.5, 0.75}) {
      const topo::Network net = topo::make_named(topology, 8);
      sim::StaticExperimentConfig config;
      config.trials = 3000;
      config.request_probability = density;
      config.free_probability = density;
      config.seed = 42;

      core::MaxFlowScheduler optimal;
      core::GreedyScheduler greedy;
      core::RandomScheduler address_mapped{util::Rng(7)};

      const auto opt = sim::run_static_experiment(net, optimal, config);
      const auto fit = sim::run_static_experiment(net, greedy, config);
      const auto adr =
          sim::run_static_experiment(net, address_mapped, config);
      table.add(topology, util::fixed(density, 2),
                util::pct(opt.blocking_probability()),
                util::pct(fit.blocking_probability()),
                util::pct(adr.blocking_probability()),
                util::pct(opt.blocking_ci95()));
    }
  }
  std::cout << table
            << "\nblocking % = allocation opportunities (sum of min(x,y)) "
               "lost to circuit blockage\n";
  return 0;
}
