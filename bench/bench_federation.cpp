// E25 — federation acceptance sweep (ISSUE 10 / DESIGN.md §14).
//
// Sweeps the two-level federation across N clusters x uplink capacity x
// tenant skew, printing per-cluster and federation throughput / response /
// loss curves, and enforces three CI gates:
//
//   1. Symmetric load: federated admission (optimal Dinic per cluster +
//      coflow-style uplink admission) must grant at least
//      kFlatFactorFloor of what one flat fabric of K*n terminals grants
//      on the identical common-random-number workload.
//   2. Cluster kill: losing one of N clusters must cost at most
//      1/N + kKillSlack of total throughput, and sibling clusters must
//      each keep at least kSiblingFloor of their no-kill throughput.
//   3. Differential: across randomized scenarios (skew, bursts, kills,
//      partitions), replaying every cluster's recorded inputs into a
//      standalone Cluster must reproduce its schedule hash bitwise.
//
// Results land in BENCH_federation.json (obs::write_json shape) for the CI
// artifact; the process exits nonzero on any gate miss.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "fed/admission.hpp"
#include "fed/cluster.hpp"
#include "fed/federation.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/federated.hpp"
#include "util/rng.hpp"

namespace {

using namespace rsin;

// Gate floors. Measured at the pinned seeds: symmetric-load federated /
// flat ~ 0.999 (the flat fabric pools free resources, so it is the upper
// reference; saturated points lose ~1.7%); killing 1-of-4 costs almost
// nothing because spill re-homes the dead cluster's backlog, and sibling
// throughput stays within noise of no-kill. Floors leave margin for
// scheduling noise, not for regressions.
constexpr double kFlatFactorFloor = 0.85;
constexpr double kKillSlack = 0.10;      // allowed loss beyond 1/N
constexpr double kSiblingFloor = 0.95;   // sibling granted vs no-kill run
constexpr int kDifferentialScenarios = 10;

sim::FederatedScenario base_scenario(std::int32_t clusters, std::int32_t n,
                                     std::int64_t uplink_capacity) {
  sim::FederatedScenario scenario;
  scenario.federation.clusters = clusters;
  scenario.federation.cluster.topology = "omega";
  scenario.federation.cluster.n = n;
  scenario.federation.cluster.scheduler = "warm";
  scenario.federation.uplink_capacity = uplink_capacity;
  scenario.federation.spill = true;
  scenario.federation.spill_after = 1;
  scenario.cycles = 300;
  scenario.arrival_rate = 0.25;
  scenario.mean_service = 3.0;
  scenario.tenants_per_cluster = 8;
  scenario.seed = 20250807;
  return scenario;
}

void record_run(obs::Registry& out, const std::string& label,
                const sim::FederatedMetrics& metrics) {
  out.gauge("bench.federation." + label + ".offered")
      .set(static_cast<double>(metrics.offered));
  out.gauge("bench.federation." + label + ".granted")
      .set(static_cast<double>(metrics.granted));
  out.gauge("bench.federation." + label + ".grant_rate")
      .set(metrics.grant_rate);
  out.gauge("bench.federation." + label + ".mean_response")
      .set(metrics.mean_response);
  out.gauge("bench.federation." + label + ".spill_moved")
      .set(static_cast<double>(metrics.spill_moved));
  for (std::size_t c = 0; c < metrics.clusters.size(); ++c) {
    out.gauge("bench.federation." + label + ".c" + std::to_string(c) +
              ".granted")
        .set(static_cast<double>(metrics.clusters[c].granted));
  }
}

void print_run(const std::string& label, const sim::FederatedMetrics& m) {
  std::cout << std::left << std::setw(34) << label << " offered "
            << std::setw(6) << m.offered << " granted " << std::setw(6)
            << m.granted << " rate " << std::fixed << std::setprecision(3)
            << m.grant_rate << " resp " << std::setprecision(2)
            << m.mean_response << " spill " << m.spill_moved << " | per-cluster";
  for (const auto& c : m.clusters) std::cout << ' ' << c.granted;
  std::cout << "\n";
}

}  // namespace

int main() {
  bool gate_pass = true;
  obs::Registry out;
  std::cout << "E25: hierarchical federation sweep "
               "(N x uplink capacity x skew)\n\n";

  // --- Sweep: throughput/response/loss curves ------------------------------
  for (const std::int32_t clusters : {2, 4}) {
    for (const std::int64_t uplink : {1, 4}) {
      for (const double skew : {0.0, 1.2}) {
        for (const double load : {0.25, 0.45}) {
        sim::FederatedScenario scenario = base_scenario(clusters, 8, uplink);
        scenario.zipf_s = skew;
        scenario.arrival_rate = load;
        const sim::FederatedMetrics fedm =
            sim::run_federated_experiment(scenario);
        const sim::FederatedMetrics flat = sim::run_flat_baseline(scenario);
        const std::string label = "n" + std::to_string(clusters) + ".u" +
                                  std::to_string(uplink) + ".s" +
                                  (skew > 0.0 ? "zipf" : "uni") + ".l" +
                                  std::to_string(static_cast<int>(load * 100));
        record_run(out, label, fedm);
        out.gauge("bench.federation." + label + ".flat_granted")
            .set(static_cast<double>(flat.granted));
        const double loss_vs_flat =
            flat.granted > 0 ? 1.0 - static_cast<double>(fedm.granted) /
                                         static_cast<double>(flat.granted)
                             : 0.0;
        out.gauge("bench.federation." + label + ".loss_vs_flat")
            .set(loss_vs_flat);
        print_run(label, fedm);
        std::cout << std::left << std::setw(34) << ("  flat(" + label + ")")
                  << " granted " << flat.granted << "  loss-vs-flat "
                  << std::fixed << std::setprecision(3) << loss_vs_flat
                  << "\n";
        }
      }
    }
  }

  // --- Gate 1: symmetric load within a fixed factor of the flat optimum ----
  {
    sim::FederatedScenario scenario = base_scenario(4, 8, 4);
    const sim::FederatedMetrics fedm = sim::run_federated_experiment(scenario);
    const sim::FederatedMetrics flat = sim::run_flat_baseline(scenario);
    const double factor =
        flat.granted > 0 ? static_cast<double>(fedm.granted) /
                               static_cast<double>(flat.granted)
                         : 1.0;
    const bool pass = factor >= kFlatFactorFloor;
    gate_pass = gate_pass && pass;
    out.gauge("bench.federation.gate.flat_factor").set(factor);
    std::cout << "\ngate 1: symmetric federated/flat factor " << std::fixed
              << std::setprecision(3) << factor << " (floor "
              << kFlatFactorFloor << ") " << (pass ? "PASS" : "FAIL") << "\n";
  }

  // --- Gate 2: single-cluster kill costs <= 1/N + slack, siblings intact ---
  {
    sim::FederatedScenario healthy = base_scenario(4, 8, 4);
    const sim::FederatedMetrics base = sim::run_federated_experiment(healthy);
    sim::FederatedScenario killed = healthy;
    killed.kill_cluster = 0;
    killed.kill_at = 50;  // dead for the last 5/6 of the run, never rejoins
    const sim::FederatedMetrics after = sim::run_federated_experiment(killed);

    const double n = static_cast<double>(healthy.federation.clusters);
    const double floor_total =
        (1.0 - 1.0 / n - kKillSlack) * static_cast<double>(base.granted);
    bool pass = static_cast<double>(after.granted) >= floor_total;
    double worst_sibling = 1.0;
    for (std::size_t c = 1; c < after.clusters.size(); ++c) {
      const double ratio =
          base.clusters[c].granted > 0
              ? static_cast<double>(after.clusters[c].granted) /
                    static_cast<double>(base.clusters[c].granted)
              : 1.0;
      worst_sibling = std::min(worst_sibling, ratio);
    }
    pass = pass && worst_sibling >= kSiblingFloor;
    gate_pass = gate_pass && pass;
    out.gauge("bench.federation.gate.kill_total_ratio")
        .set(static_cast<double>(after.granted) /
             static_cast<double>(base.granted));
    out.gauge("bench.federation.gate.kill_worst_sibling").set(worst_sibling);
    std::cout << "gate 2: kill 1/" << healthy.federation.clusters
              << " total " << after.granted << "/" << base.granted
              << " (floor " << std::setprecision(0) << floor_total
              << "), worst sibling ratio " << std::setprecision(3)
              << worst_sibling << " (floor " << kSiblingFloor << ") "
              << (pass ? "PASS" : "FAIL") << "\n";
  }

  // --- Gate 3: randomized differential — standalone replay is bitwise -----
  {
    util::Rng rng(0xe25dULL);
    int failures = 0;
    for (int round = 0; round < kDifferentialScenarios; ++round) {
      sim::FederatedScenario scenario = base_scenario(
          static_cast<std::int32_t>(rng.uniform_int(2, 4)), 4,
          rng.uniform_int(1, 3));
      scenario.cycles = 120;
      scenario.arrival_rate = rng.uniform(0.15, 0.45);
      scenario.zipf_s = rng.uniform(0.0, 1.5);
      scenario.seed = rng();
      if (rng.bernoulli(0.5)) {
        scenario.kill_cluster = 0;
        scenario.kill_at = rng.uniform_int(20, 60);
        scenario.rejoin_at =
            rng.bernoulli(0.5) ? scenario.kill_at + 30 : -1;
      }
      if (rng.bernoulli(0.4)) {
        scenario.partition_cluster = scenario.federation.clusters - 1;
        scenario.partition_at = rng.uniform_int(10, 50);
        scenario.heal_at = scenario.partition_at + 25;
      }
      if (rng.bernoulli(0.5)) {
        scenario.burst_cluster = 0;
        scenario.burst_factor = 4.0;
        scenario.burst_from = 30;
        scenario.burst_until = 70;
      }
      fed::Federation federation(scenario.federation);
      federation.record_inputs(true);
      (void)sim::drive_federation(federation, scenario);
      for (std::int32_t c = 0; c < federation.clusters(); ++c) {
        const fed::Cluster& original = federation.cluster(c);
        const std::unique_ptr<fed::Cluster> replayed = fed::replay_cluster(
            original.config(), original.inputs(), scenario.cycles);
        if (replayed->schedule_hash() != original.schedule_hash()) {
          ++failures;
          std::cout << "  differential MISMATCH: round " << round
                    << " cluster " << c << "\n";
        }
      }
    }
    const bool pass = failures == 0;
    gate_pass = gate_pass && pass;
    out.gauge("bench.federation.gate.differential_failures")
        .set(static_cast<double>(failures));
    std::cout << "gate 3: " << kDifferentialScenarios
              << " randomized scenarios, " << failures
              << " standalone-replay mismatches "
              << (pass ? "PASS" : "FAIL") << "\n";
  }

  std::cout << "\nE25 gates: " << (gate_pass ? "PASS" : "FAIL") << "\n";
  out.gauge("bench.federation.pass").set(gate_pass ? 1.0 : 0.0);
  std::ofstream json_out("BENCH_federation.json");
  obs::write_json(out.snapshot(), json_out);
  return gate_pass ? 0 : 1;
}
