// E3 — Figs. 3 and 4: flow augmentation is resource reallocation.
//
// Rebuilds the six-node unit-capacity flow network of Fig. 3, installs the
// initial assignment f along s-a-d-t (pa allocated rd, pc blocked from rb),
// shows the augmenting path s-c-d-a-b-t, and prints the final assignment
// f' with both resources allocated — the reallocation of Fig. 4(b).
#include <iostream>

#include "flow/max_flow.hpp"
#include "flow/network.hpp"

int main() {
  using namespace rsin;
  std::cout << "=== E3 / Figs. 3-4: advancing flow through an augmenting "
               "path ===\n\n";

  flow::FlowNetwork net;
  const flow::NodeId s = net.add_node("s");
  const flow::NodeId a = net.add_node("a");
  const flow::NodeId b = net.add_node("b");
  const flow::NodeId c = net.add_node("c");
  const flow::NodeId d = net.add_node("d");
  const flow::NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  const flow::ArcId sa = net.add_arc(s, a, 1);
  const flow::ArcId sc = net.add_arc(s, c, 1);
  const flow::ArcId ab = net.add_arc(a, b, 1);
  const flow::ArcId ad = net.add_arc(a, d, 1);
  const flow::ArcId cd = net.add_arc(c, d, 1);
  const flow::ArcId bt = net.add_arc(b, t, 1);
  const flow::ArcId dt = net.add_arc(d, t, 1);

  // Fig. 3(a): initial flow on s-a-d-t == mapping {(pa, rd)}; pc blocked.
  net.set_flow(sa, 1);
  net.set_flow(ad, 1);
  net.set_flow(dt, 1);
  std::cout << "initial flow (mapping {(pa,rd)}, request pc blocked):\n"
            << net << '\n';

  // Fig. 3(b)/(c): Dinic finds s-c-d-a-b-t, cancelling a->d.
  flow::DinicTrace trace;
  const flow::MaxFlowResult result = flow::max_flow_dinic(net, &trace);
  std::cout << "augmented " << result.value
            << " unit via the flow augmenting path (layered network had "
            << trace.phases.front().layers.size() << " layers)\n\n";
  std::cout << "final flow f' (mapping {(pa,rb),(pc,rd)}):\n" << net;

  const bool reallocated = net.arc(ad).flow == 0 && net.arc(ab).flow == 1 &&
                           net.arc(cd).flow == 1 && net.arc(bt).flow == 1 &&
                           net.arc(dt).flow == 1 && net.arc(sc).flow == 1;
  std::cout << "\nreallocation matches Fig. 4(b): "
            << (reallocated ? "yes" : "NO") << '\n'
            << "total resources allocated: " << net.flow_value()
            << " (paper: 2)\n";
  return reallocated ? 0 : 1;
}
