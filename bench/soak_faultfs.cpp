// Fault-injection soak harness for the rsind service (DESIGN.md §12).
//
// Extends the PR 6 crash soak (soak_kill) with a hostile disk: every run
// forks a real rsind daemon with a randomized --fault-spec, so each
// syscall the journal and snapshot paths issue can fail with ENOSPC/EIO,
// be torn short, storm EINTR, or die mid-write under a simulated power
// cut. The daemon's contract under all of that:
//
//   - zero acknowledged-command loss: every command the client saw `ok`
//     for survives any subsequent crash/recovery,
//   - defined degradation: a failed commit rolls state back to the
//     durable prefix and refuses mutations with `err code=read-only ...`
//     (never a wrong answer, never a hang), then re-arms itself once the
//     disk heals,
//   - bitwise recovery: after the client has retried every refusal to
//     `ok`, final per-tenant stats equal an uninterrupted golden run's
//     stats exactly — every double, counter, and state hash.
//
// The harness drives that loop: a golden run per scenario, then N fault
// schedules per scenario, each interleaved with SIGKILL points (restart
// rolls a fresh random schedule half the time — disks do not heal just
// because a process died). A daemon stuck read-only behind a persistent
// fault (e.g. power cut) gets the runbook treatment: SIGKILL plus a
// clean-disk `--recover` restart, which must also land bitwise.
//
// Emits BENCH_soak_faultfs.json for CI artifact upload. Any stats
// divergence, lost acknowledgment, failed recovery, unexpected error
// body, or non-zero drain exits 1.
//
// Usage:
//   soak_faultfs [--scenarios=N] [--schedules=M] [--kills=K] [--seed=S]
//                [--dir=DIR] [--json=PATH]
//
//   --scenarios=N  randomized command scripts (default 20)
//   --schedules=M  fault schedules per scenario (default 10; the gate
//                  wants scenarios*schedules >= 200)
//   --kills=K      SIGKILL points per fault run (default 2)
//   --seed=S       master seed (default 2026)
//   --dir=DIR      scratch directory (default /tmp, a subdir is created)
//   --json=PATH    report path (default BENCH_soak_faultfs.json)
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "svc/journal.hpp"
#include "util/rng.hpp"

#ifndef RSIND_PATH
#error "RSIND_PATH must be defined (path to the rsind binary)"
#endif

namespace {

using namespace rsin;

struct Options {
  std::int64_t scenarios = 20;
  std::int64_t schedules = 10;
  std::int64_t kills = 2;
  std::uint64_t seed = 2026;
  std::string dir = "/tmp";
  std::string json = "BENCH_soak_faultfs.json";
};

Options parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--scenarios") {
      options.scenarios = std::stoll(value);
    } else if (key == "--schedules") {
      options.schedules = std::stoll(value);
    } else if (key == "--kills") {
      options.kills = std::stoll(value);
    } else if (key == "--seed") {
      options.seed = std::stoull(value);
    } else if (key == "--dir") {
      options.dir = value;
    } else if (key == "--json") {
      options.json = value;
    } else {
      std::cerr << "usage: soak_faultfs [--scenarios=N] [--schedules=M]"
                   " [--kills=K] [--seed=S] [--dir=DIR] [--json=PATH]\n";
      std::exit(2);
    }
  }
  return options;
}

/// Tallies that end up in the JSON report.
struct Totals {
  std::int64_t fault_runs = 0;
  std::int64_t commands = 0;
  std::int64_t kills = 0;
  std::int64_t refusals_retried = 0;
  std::int64_t rescue_restarts = 0;
  std::int64_t duplicate_tenant_acks = 0;
};

/// One daemon under test: fork/exec of RSIND_PATH on a private socket+dir,
/// optionally with a --fault-spec hostile disk.
class Daemon {
 public:
  Daemon(std::string socket_path, std::string dir)
      : socket_path_(std::move(socket_path)), dir_(std::move(dir)) {}
  ~Daemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  void start(bool recover, const std::string& fault_spec) {
    std::cout.flush();  // fork() would duplicate any buffered output.
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: quiet stdout (the harness output is the report).
      ::freopen("/dev/null", "w", stdout);
      std::vector<const char*> argv = {
          RSIND_PATH, "--socket", socket_path_.c_str(), "--dir",
          dir_.c_str(),
          // Durable commits so fdatasync faults are on the hot path; tiny
          // probe backoff so read-only re-arms within the retry budget.
          "--durable", "--io-probe-backoff-ms", "5", "--poll-timeout-ms",
          "10"};
      if (recover) argv.push_back("--recover");
      if (!fault_spec.empty()) {
        argv.push_back("--fault-spec");
        argv.push_back(fault_spec.c_str());
      }
      argv.push_back(nullptr);
      ::execv(RSIND_PATH, const_cast<char* const*>(argv.data()));
      ::_exit(127);
    }
    if (pid < 0) {
      std::cerr << "fork failed\n";
      std::exit(1);
    }
    pid_ = pid;
  }

  /// SIGKILL — the crash under test. Reaps the corpse.
  void kill_hard() {
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      std::cerr << "FAIL: daemon did not die from SIGKILL (status=" << status
                << ")\n";
      std::exit(1);
    }
  }

  /// SIGTERM — the graceful drain. Must exit 0 even on a hostile disk.
  bool drain() {
    ::kill(pid_, SIGTERM);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }

  [[nodiscard]] const std::string& socket_path() const {
    return socket_path_;
  }

 private:
  std::string socket_path_;
  std::string dir_;
  pid_t pid_ = -1;
};

svc::Client make_client(const Daemon& daemon) {
  svc::ClientOptions options;
  options.socket_path = daemon.socket_path();
  options.timeout_ms = 5000;
  options.retries = 12;   // Daemon restarts ride inside the retry loop.
  options.backoff_ms = 20;
  return svc::Client(options);
}

/// A deterministic command script plus where its stats are read.
struct Scenario {
  std::vector<std::string> commands;
  std::vector<std::string> tenants;
};

// Same command mix as soak_kill, plus occasional `snapshot` requests so
// the tmp-write/fsync/rename fault windows sit on the scripted path too.
Scenario make_scenario(std::uint64_t seed) {
  util::Rng rng(seed);
  Scenario scenario;

  static const char* kTopologies[] = {"omega", "baseline", "cube"};
  static const char* kSchedulers[] = {"breaker", "warm", "dinic", "greedy"};
  const std::int64_t tenant_count = rng.uniform_int(1, 2);
  for (std::int64_t t = 0; t < tenant_count; ++t) {
    const std::string name = "t" + std::to_string(t);
    const std::string topology = kTopologies[rng.uniform_int(0, 2)];
    const std::int32_t n = rng.uniform_int(0, 1) == 0 ? 8 : 16;
    scenario.tenants.push_back(name);
    scenario.commands.push_back(
        "tenant name=" + name + " topology=" + topology +
        " n=" + std::to_string(n) +
        " seed=" + std::to_string(rng.uniform_int(1, 1 << 20)) +
        " scheduler=" + kSchedulers[rng.uniform_int(0, 3)] +
        " max-pending=" + std::to_string(rng.uniform_int(4, 64)));
  }

  const std::int64_t body = rng.uniform_int(80, 140);
  std::uint64_t next_id = 1;
  for (std::int64_t i = 0; i < body; ++i) {
    const std::string& tenant =
        scenario.tenants[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(scenario.tenants.size()) - 1))];
    const std::int64_t roll = rng.uniform_int(0, 99);
    if (roll < 53) {
      scenario.commands.push_back(
          "req tenant=" + tenant + " id=" + std::to_string(next_id++) +
          " proc=" + std::to_string(rng.uniform_int(0, 7)) +
          " prio=" + std::to_string(rng.uniform_int(0, 3)));
    } else if (roll < 83) {
      scenario.commands.push_back("cycle tenant=" + tenant +
                                  " id=" + std::to_string(next_id++));
    } else if (roll < 88) {
      scenario.commands.push_back("inject-fault tenant=" + tenant +
                                  " link=" +
                                  std::to_string(rng.uniform_int(0, 7)));
    } else if (roll < 93) {
      scenario.commands.push_back("repair tenant=" + tenant + " link=" +
                                  std::to_string(rng.uniform_int(0, 7)));
    } else if (roll < 96) {
      scenario.commands.push_back(
          "set tenant=" + tenant +
          " batch-window=" + std::to_string(rng.uniform_int(1, 3)));
    } else if (roll < 98) {
      scenario.commands.push_back(
          "set tenant=" + tenant +
          " level=" + std::to_string(rng.uniform_int(0, 2)));
    } else {
      scenario.commands.push_back("snapshot");
    }
  }
  // Settle: everything in flight retires, queues drain where they can.
  for (const std::string& tenant : scenario.tenants) {
    scenario.commands.push_back("set tenant=" + tenant + " batch-window=1");
    for (int i = 0; i < 25; ++i) {
      scenario.commands.push_back("cycle tenant=" + tenant +
                                  " id=" + std::to_string(next_id++));
    }
  }
  return scenario;
}

/// One randomized fault schedule in the --fault-spec mini-language. Every
/// rule is finite (bounded count) except the power cut, whose "disk is
/// gone until restart" persistence is the point — the rescue-restart path
/// below is what clears it.
std::string make_fault_spec(util::Rng& rng) {
  std::vector<std::string> rules;
  const std::int64_t rule_count = rng.uniform_int(1, 3);
  for (std::int64_t r = 0; r < rule_count; ++r) {
    const std::string after = std::to_string(rng.uniform_int(2, 160));
    switch (rng.uniform_int(0, 7)) {
      case 0:
        rules.push_back("op=write,path=journal,after=" + after + ",count=" +
                        std::to_string(rng.uniform_int(1, 6)) +
                        ",err=ENOSPC");
        break;
      case 1:
        rules.push_back("op=write,path=journal,after=" + after + ",count=" +
                        std::to_string(rng.uniform_int(1, 4)) + ",err=EIO");
        break;
      case 2:  // EINTR storm: call sites must absorb it invisibly.
        rules.push_back("op=write,after=" + after + ",count=" +
                        std::to_string(rng.uniform_int(5, 40)) +
                        ",err=EINTR");
        break;
      case 3:  // Torn writes: journal framing must shrug them off.
        rules.push_back("op=write,path=journal,after=" + after + ",count=" +
                        std::to_string(rng.uniform_int(10, 80)) + ",short=" +
                        std::to_string(rng.uniform_int(1, 7)));
        break;
      case 4:  // Durable mode puts fdatasync on every commit.
        rules.push_back("op=fdatasync,after=" +
                        std::to_string(rng.uniform_int(0, 30)) + ",count=" +
                        std::to_string(rng.uniform_int(1, 3)) + ",err=EIO");
        break;
      case 5:  // Snapshot tmp-file and rename fault windows.
        rules.push_back("op=write,path=.tmp,after=" +
                        std::to_string(rng.uniform_int(0, 4)) + ",count=" +
                        std::to_string(rng.uniform_int(1, 3)) +
                        ",err=ENOSPC");
        break;
      case 6:
        rules.push_back("op=rename,path=snapshot,count=1,err=EIO");
        break;
      case 7:  // Power cut mid-journal-write: torn tail, then a dead disk.
        rules.push_back("op=write,path=journal,after=" + after +
                        ",count=1,short=" +
                        std::to_string(rng.uniform_int(0, 5)) + ",cut=1");
        break;
    }
  }
  std::string spec;
  for (const std::string& rule : rules) {
    if (!spec.empty()) spec += ';';
    spec += rule;
  }
  return spec;
}

[[nodiscard]] bool is_coded_refusal(const std::string& body) {
  return body.rfind("code=", 0) == 0;
}

/// Send one command, riding out degraded-mode refusals. Coded refusals
/// (`err code=read-only ...`, `code=io`, `code=busy`) mean "not applied,
/// state rolled back" — the client retries until the daemon re-arms. If
/// the disk never heals (power cut), apply the runbook: SIGKILL and
/// restart --recover on a clean disk, then retry. The one asymmetry is
/// `tenant`, the only verb without an idempotent id: a commit that fails
/// *after* the flush landed leaves the record durable-but-unacknowledged,
/// so the retry may come back "already exists" — that IS the ack.
void send_checked(svc::Client& client, Daemon& daemon,
                  const std::string& command, Totals& totals) {
  const bool is_tenant = command.rfind("tenant ", 0) == 0;
  int rescues_left = 4;
  int attempts_before_rescue = 300;  // ~3s of 10ms waits per rescue.
  while (true) {
    const svc::Response reply = client.request(command);
    if (reply.ok) return;
    if (is_tenant &&
        reply.body.find("already exists") != std::string::npos) {
      // Durable-but-unacknowledged create, replayed at rollback or
      // recovery; the duplicate refusal is proof it survived.
      ++totals.duplicate_tenant_acks;
      return;
    }
    if (!is_coded_refusal(reply.body)) {
      std::cerr << "FAIL: unexpected error for \"" << command
                << "\": " << reply.body << '\n';
      std::exit(1);
    }
    ++totals.refusals_retried;
    if (--attempts_before_rescue <= 0) {
      if (--rescues_left < 0) {
        std::cerr << "FAIL: \"" << command
                  << "\" still refused after rescue restarts: " << reply.body
                  << '\n';
        std::exit(1);
      }
      // Runbook rescue: the disk never healed; replace it (clean spec)
      // and recover. Acknowledged state must ride through unharmed.
      daemon.kill_hard();
      daemon.start(/*recover=*/true, /*fault_spec=*/"");
      ++totals.rescue_restarts;
      attempts_before_rescue = 300;
      continue;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

std::vector<std::string> read_stats(svc::Client& client,
                                    const Scenario& scenario) {
  std::vector<std::string> stats;
  for (const std::string& tenant : scenario.tenants) {
    const svc::Response reply = client.request("stats tenant=" + tenant);
    if (!reply.ok) {
      std::cerr << "FAIL: stats refused: " << reply.body << '\n';
      std::exit(1);
    }
    stats.push_back(reply.body);
  }
  return stats;
}

void reset_dir(const std::string& dir) {
  const std::string command =
      "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
  if (std::system(command.c_str()) != 0) {
    std::cerr << "FAIL: cannot reset " << dir << '\n';
    std::exit(1);
  }
}

void write_report(const Options& options, const Totals& totals, bool pass) {
  std::ofstream out(options.json);
  out << "{\n"
      << "  \"bench\": \"soak_faultfs\",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << ",\n"
      << "  \"seed\": " << options.seed << ",\n"
      << "  \"scenarios\": " << options.scenarios << ",\n"
      << "  \"schedules_per_scenario\": " << options.schedules << ",\n"
      << "  \"fault_runs\": " << totals.fault_runs << ",\n"
      << "  \"commands\": " << totals.commands << ",\n"
      << "  \"sigkills\": " << totals.kills << ",\n"
      << "  \"refusals_retried\": " << totals.refusals_retried << ",\n"
      << "  \"rescue_restarts\": " << totals.rescue_restarts << ",\n"
      << "  \"duplicate_tenant_acks\": " << totals.duplicate_tenant_acks
      << "\n"
      << "}\n";
  if (!out) {
    std::cerr << "FAIL: cannot write " << options.json << '\n';
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);
  const std::string base =
      options.dir + "/soak_faultfs." + std::to_string(::getpid());
  util::Rng master(options.seed);
  Totals totals;

  for (std::int64_t s = 0; s < options.scenarios; ++s) {
    const std::uint64_t scenario_seed = master();
    const Scenario scenario = make_scenario(scenario_seed);
    const auto total = static_cast<std::int64_t>(scenario.commands.size());

    // --- golden: uninterrupted run, healthy disk ------------------------
    const std::string golden_dir = base + "/golden";
    reset_dir(golden_dir);
    std::vector<std::string> golden_stats;
    {
      Daemon daemon(golden_dir + "/rsind.sock", golden_dir);
      daemon.start(/*recover=*/false, /*fault_spec=*/"");
      svc::Client client = make_client(daemon);
      for (const std::string& command : scenario.commands) {
        const svc::Response reply = client.request(command);
        if (!reply.ok) {
          std::cerr << "FAIL: golden run refused \"" << command
                    << "\": " << reply.body << '\n';
          return 1;
        }
      }
      golden_stats = read_stats(client, scenario);
      if (!daemon.drain()) {
        std::cerr << "FAIL: golden drain did not exit 0 (scenario " << s
                  << ")\n";
        return 1;
      }
      const svc::Journal::ScanResult scan =
          svc::Journal::scan(golden_dir + "/journal.bin");
      if (scan.truncated) {
        std::cerr << "FAIL: golden journal has a torn tail at offset "
                  << scan.damage_offset << ": " << scan.damage << '\n';
        return 1;
      }
    }

    // --- fault runs: hostile disk + SIGKILL points ----------------------
    for (std::int64_t f = 0; f < options.schedules; ++f) {
      util::Rng chaos(scenario_seed ^
                      (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(f) + 1)));
      std::vector<std::int64_t> kill_points;
      while (static_cast<std::int64_t>(kill_points.size()) <
             std::min(options.kills, total - 1)) {
        const std::int64_t point = chaos.uniform_int(1, total - 1);
        if (std::find(kill_points.begin(), kill_points.end(), point) ==
            kill_points.end()) {
          kill_points.push_back(point);
        }
      }
      std::sort(kill_points.begin(), kill_points.end());

      const std::string fault_dir = base + "/fault";
      reset_dir(fault_dir);
      Daemon daemon(fault_dir + "/rsind.sock", fault_dir);
      daemon.start(/*recover=*/false, make_fault_spec(chaos));
      ++totals.fault_runs;
      svc::Client client = make_client(daemon);
      std::size_t next_kill = 0;
      for (std::int64_t i = 0; i < total; ++i) {
        const bool kill_here = next_kill < kill_points.size() &&
                               kill_points[next_kill] == i;
        // `tenant` creation is the one command without an idempotent id;
        // the post-ack resend flavor is handled by send_checked's
        // already-exists acknowledgment, but boundary kills keep the
        // common case clean.
        const bool resendable =
            scenario.commands[i].rfind("tenant ", 0) != 0;
        const bool after_ack =
            kill_here && resendable && chaos.uniform_int(0, 1) == 1;
        // Half the restarts roll a fresh hostile schedule — a crash does
        // not heal a disk. The other half model a disk swap.
        const auto restart_spec = [&]() -> std::string {
          return chaos.uniform_int(0, 1) == 1 ? make_fault_spec(chaos)
                                              : std::string();
        };
        if (kill_here && !after_ack) {
          // Boundary kill: crash before this command is ever sent.
          daemon.kill_hard();
          daemon.start(/*recover=*/true, restart_spec());
          ++totals.kills;
        }
        send_checked(client, daemon, scenario.commands[i], totals);
        ++totals.commands;
        if (kill_here && after_ack) {
          // Post-ack kill: the command is journaled (group commit ran
          // before the reply); the restart must answer the re-send as a
          // duplicate / no-op, not double-execute it.
          daemon.kill_hard();
          daemon.start(/*recover=*/true, restart_spec());
          ++totals.kills;
          send_checked(client, daemon, scenario.commands[i], totals);
        }
        if (kill_here) ++next_kill;
      }
      const std::vector<std::string> fault_stats =
          read_stats(client, scenario);
      if (!daemon.drain()) {
        std::cerr << "FAIL: fault-run drain did not exit 0 (scenario " << s
                  << ", schedule " << f << ")\n";
        write_report(options, totals, /*pass=*/false);
        return 1;
      }

      if (fault_stats != golden_stats) {
        std::cerr << "FAIL: scenario " << s << " schedule " << f << " (seed "
                  << scenario_seed << ") diverged under faults:\n";
        for (std::size_t t = 0; t < golden_stats.size(); ++t) {
          std::cerr << "  golden: " << golden_stats[t] << '\n'
                    << "  fault:  " << fault_stats[t] << '\n';
        }
        write_report(options, totals, /*pass=*/false);
        return 1;
      }
    }
    std::cout << "scenario " << s << ": " << total << " commands x "
              << options.schedules << " fault schedules, bitwise match\n";
  }

  (void)std::system(("rm -rf '" + base + "'").c_str());
  write_report(options, totals, /*pass=*/true);
  std::cout << "soak_faultfs: " << totals.fault_runs
            << " hostile-disk runs, " << totals.kills << " SIGKILLs, "
            << totals.refusals_retried << " refusals retried, "
            << totals.rescue_restarts << " rescue restarts, all "
            << "recoveries bitwise-identical, all drains exit 0\n";
  return 0;
}
