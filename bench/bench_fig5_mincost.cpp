// E4 — Fig. 5: Transformation 2 and the minimum-cost flow schedule.
//
// The figure's scenario: processors p3, p5, p8 request with priorities;
// resources r1, r4, r5, r7, r8 are available with preferences (levels
// 1..10); the out-of-kilter algorithm returns the mapping
// {(p3,r8),(p5,r1),(p8,r7)} — i.e. the three most-preferred resources
// r8, r1, r7 are the ones used. The figure's exact levels live in the
// artwork; we reconstruct them as r1=9, r4=2, r5=3, r7=8, r8=10 and
// priorities p3=6, p5=4, p8=9, and assert the same *resource set* and
// optimal cost (the pairing within the set is cost-neutral and depends on
// the figure's pre-occupied links).
#include <iostream>
#include <set>

#include "core/scheduler.hpp"
#include "core/transform.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsin;
  std::cout << "=== E4 / Fig. 5: priority/preference scheduling via "
               "minimum-cost flow ===\n\n";

  const topo::Network network = topo::make_omega(8);
  core::Problem problem;
  problem.network = &network;
  problem.requests = {{2, 6, 0}, {4, 4, 0}, {7, 9, 0}};
  problem.free_resources = {
      {0, 9, 0}, {3, 2, 0}, {4, 3, 0}, {6, 8, 0}, {7, 10, 0}};

  const core::TransformResult transformed = core::transformation2(problem);
  std::cout << "Transformation 2: " << transformed.net.node_count()
            << " nodes (incl. bypass node u), " << transformed.net.arc_count()
            << " arcs, F0 = " << transformed.request_count << "\n\n";

  util::Table table({"algorithm", "allocated", "resources used",
                     "schedule cost"});
  for (const auto algorithm :
       {flow::MinCostFlowAlgorithm::kOutOfKilter,
        flow::MinCostFlowAlgorithm::kSsp,
        flow::MinCostFlowAlgorithm::kCycleCancel,
        flow::MinCostFlowAlgorithm::kNetworkSimplex}) {
    core::MinCostScheduler scheduler(algorithm);
    const core::ScheduleResult result = scheduler.schedule(problem);
    std::set<int> used;
    for (const core::Assignment& a : result.assignments) {
      used.insert(a.resource.resource + 1);
    }
    std::string names;
    for (const int r : used) names += "r" + std::to_string(r) + " ";
    table.add(scheduler.name(), result.allocated(), names, result.cost);
  }
  std::cout << table
            << "\npaper's mapping {(p3,r8),(p5,r1),(p8,r7)} uses the same "
               "resource set {r1, r7, r8};\nall four min-cost algorithms "
               "agree on the optimal cost.\n";
  return 0;
}
