// Observability overhead gate: the E17 warm-start hot loop with and without
// an obs::Registry bound to the scheduler (E22).
//
// The zero-cost-when-disabled contract (DESIGN.md §9) allows instrumented
// call sites to cost one null check when no registry is attached, and a few
// relaxed fetch_adds on cached counter pointers when one is. This bench
// holds the wiring to that: both configurations replay the *same*
// precomputed E17 fault-sweep cycle stream through a WarmMaxFlowScheduler,
// interleaved best-of-N wall times, and the instrumented run must stay
// within 2% of the plain one.
//
// Results land in BENCH_obs_overhead.json (obs::write_json shape) so CI can
// archive the trajectory; exit code is the acceptance verdict.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "fault/fault_injector.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace rsin;

/// One scheduling cycle of the precomputed sweep.
struct SweepCycle {
  std::size_t pattern = 0;  ///< Index into Workload::patterns.
  std::vector<core::Request> requests;
  std::vector<core::FreeResource> free_resources;
};

/// The E17 sweep, fully materialized so every replay sees identical input
/// (same construction as bench_warm_start: 0/1/2/4 dead fabric links, 60%
/// load snapshots per pattern).
struct Workload {
  std::vector<topo::Network> patterns;
  std::vector<SweepCycle> cycles;
};

Workload make_workload(std::int32_t n, int trials_per_pattern,
                       std::uint64_t seed) {
  Workload workload;
  util::Rng rng(seed);
  const fault::FaultConfig fault_config;  // fabric_links_only
  for (const int failures : {0, 1, 2, 4}) {
    topo::Network net = topo::make_named("omega", n);
    int killed = 0;
    while (killed < failures) {
      const auto link =
          static_cast<topo::LinkId>(rng.uniform_int(0, net.link_count() - 1));
      if (!fault::link_eligible(net, link, fault_config) ||
          net.link_failed(link)) {
        continue;
      }
      net.fail_link(link);
      ++killed;
    }
    workload.patterns.push_back(std::move(net));
  }
  for (std::size_t pattern = 0; pattern < workload.patterns.size();
       ++pattern) {
    const topo::Network& net = workload.patterns[pattern];
    for (int trial = 0; trial < trials_per_pattern; ++trial) {
      SweepCycle cycle;
      cycle.pattern = pattern;
      for (std::int32_t p = 0; p < net.processor_count(); ++p) {
        if (rng.bernoulli(0.6)) cycle.requests.push_back({.processor = p});
      }
      for (std::int32_t r = 0; r < net.resource_count(); ++r) {
        if (rng.bernoulli(0.6)) {
          cycle.free_resources.push_back({.resource = r});
        }
      }
      workload.cycles.push_back(std::move(cycle));
    }
  }
  return workload;
}

struct ReplayResult {
  double seconds = 0.0;
  std::int64_t allocated = 0;  ///< Total circuits granted (cross-check).
};

/// Feeds every cycle through the scheduler, reusing one Problem object the
/// way the DES scheduling loop does.
ReplayResult replay(core::Scheduler& scheduler, const Workload& workload) {
  core::Problem problem;
  ReplayResult result;
  util::Stopwatch watch;
  for (const SweepCycle& cycle : workload.cycles) {
    problem.network = &workload.patterns[cycle.pattern];
    problem.requests = cycle.requests;
    problem.free_resources = cycle.free_resources;
    result.allocated +=
        static_cast<std::int64_t>(scheduler.schedule(problem).allocated());
  }
  result.seconds = watch.seconds();
  return result;
}

}  // namespace

int main() {
  std::cout << "=== E22: observability overhead on the E17 warm-start loop "
               "(omega 8x8, 0/1/2/4 dead links, 60% load) ===\n\n";
  const Workload workload = make_workload(8, 600, 3008);
  const auto cycles = workload.cycles.size();

  core::WarmMaxFlowScheduler plain(/*verify=*/false);
  core::WarmMaxFlowScheduler instrumented(/*verify=*/false);
  obs::Registry registry;
  instrumented.bind_obs(obs::Handle{&registry, nullptr});

  // Interleaved best-of-9: alternating reps cancel thermal / frequency
  // drift, and the min filters scheduler-noise outliers, which a 2% gate
  // cannot absorb on raw means.
  constexpr int kReps = 9;
  ReplayResult plain_best = replay(plain, workload);
  ReplayResult inst_best = replay(instrumented, workload);
  RSIN_ENSURE(plain_best.allocated == inst_best.allocated,
              "instrumented replay must grant the same circuit count");
  for (int rep = 1; rep < kReps; ++rep) {
    const ReplayResult p = replay(plain, workload);
    if (p.seconds < plain_best.seconds) plain_best = p;
    const ReplayResult i = replay(instrumented, workload);
    if (i.seconds < inst_best.seconds) inst_best = i;
  }

  const double overhead =
      inst_best.seconds / plain_best.seconds - 1.0;  // signed fraction
  const auto snap = registry.snapshot();
  const auto counter = [&](const std::string& name) -> std::int64_t {
    for (const auto& [key, value] : snap.counters) {
      if (key == name) return value;
    }
    return 0;
  };

  util::Table table({"configuration", "cycles", "best cyc/s", "overhead"});
  table.add("plain (no registry)", cycles,
            util::fixed(static_cast<double>(cycles) / plain_best.seconds, 0),
            "-");
  table.add("instrumented", cycles,
            util::fixed(static_cast<double>(cycles) / inst_best.seconds, 0),
            util::fixed(overhead * 100.0, 2) + "%");
  std::cout << table;
  std::cout << "\ninstrumented run counted " << counter("flow.warm_cycles")
            << " warm cycles, " << counter("flow.augmentations")
            << " augmentations, " << counter("flow.bfs_phases")
            << " BFS phases over " << kReps << " reps\n";

  const bool pass = overhead <= 0.02;

  // BENCH_obs_overhead.json: bench verdict gauges alongside the
  // instrumented run's real counters, in the exporter's JSON shape.
  obs::Registry out;
  out.gauge("bench.obs_overhead.cycles").set(static_cast<double>(cycles));
  out.gauge("bench.obs_overhead.plain_cycles_per_sec")
      .set(static_cast<double>(cycles) / plain_best.seconds);
  out.gauge("bench.obs_overhead.instrumented_cycles_per_sec")
      .set(static_cast<double>(cycles) / inst_best.seconds);
  out.gauge("bench.obs_overhead.overhead_pct").set(overhead * 100.0);
  out.gauge("bench.obs_overhead.pass").set(pass ? 1.0 : 0.0);
  out.merge(registry);
  std::ofstream json_out("BENCH_obs_overhead.json");
  obs::write_json(out.snapshot(), json_out);
  std::cout << "results written to BENCH_obs_overhead.json\n";

  std::cout << "acceptance (instrumented within 2% of plain): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
