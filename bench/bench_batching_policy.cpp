// E13 — the wait states of Fig. 10: "to avoid repeated attempts of
// allocating blocked resources and to improve the scheduling efficiency,
// the MRSIN may choose to wait for more requests to arrive and more
// resources to become available before entering a scheduling cycle."
//
// We sweep the batch threshold (minimum pending requests per cycle) in the
// dynamic simulation: larger batches give the optimal scheduler more
// simultaneous requests to pack (fewer lost opportunities per cycle) at the
// price of added queueing delay. The response-time minimum sits at a small
// but non-trivial batch — the trade the paper's state machine encodes.
#include <iostream>

#include "core/scheduler.hpp"
#include "sim/system_sim.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsin;
  std::cout << "=== E13: scheduling-cycle batching policy (Fig. 10 wait "
               "states) ===\n\n";

  const topo::Network network = topo::make_omega(8);
  util::Table table({"min batch", "utilization", "blocking %",
                     "mean wait", "mean response", "cycles"});

  for (const std::int32_t batch : {1, 2, 4, 6}) {
    sim::SystemConfig config;
    config.arrival_rate = 0.7;
    config.transmission_time = 0.05;
    config.mean_service_time = 1.0;
    config.cycle_interval = 0.05;
    config.warmup_time = 100.0;
    config.measure_time = 1500.0;
    config.min_pending_requests = batch;
    config.max_batch_wait = 2.0;  // anti-starvation override
    config.seed = 31;

    core::MaxFlowScheduler scheduler;
    const sim::SystemMetrics metrics =
        sim::simulate_system(network, scheduler, config);
    table.add(batch, util::fixed(metrics.resource_utilization, 3),
              util::pct(metrics.blocking_probability),
              util::fixed(metrics.mean_wait_time, 3),
              util::fixed(metrics.mean_response_time, 3),
              metrics.scheduling_cycles);
  }
  std::cout << table
            << "\nbigger batches pack scheduling cycles better (lower "
               "blocking) but add queueing wait\n";
  return 0;
}
