// E12 — Section III-B's complexity claim: on the unit-capacity networks
// produced by Transformation 1, Dinic's algorithm runs in O(|V|^(2/3)|E|)
// (versus O(|E|^3) general bounds for Ford–Fulkerson-style methods).
//
// google-benchmark timings over growing Omega MRSINs (full load), plus an
// empirical scaling check: measured edge-operation counts divided by the
// V^(2/3)*E bound must stay roughly constant.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/scheduler.hpp"
#include "core/transform.hpp"
#include "flow/max_flow.hpp"
#include "topo/builders.hpp"

namespace {

using namespace rsin;

core::Problem full_problem(const topo::Network& net) {
  std::vector<topo::ProcessorId> requesting;
  std::vector<topo::ResourceId> available;
  for (std::int32_t i = 0; i < net.processor_count(); ++i) {
    requesting.push_back(i);
    available.push_back(i);
  }
  return core::make_problem(net, requesting, available);
}

void BM_DinicOnOmegaMrsin(benchmark::State& state) {
  const topo::Network net =
      topo::make_omega(static_cast<std::int32_t>(state.range(0)));
  const core::Problem problem = full_problem(net);
  const core::TransformResult transformed = core::transformation1(problem);
  std::int64_t operations = 0;
  for (auto _ : state) {
    flow::FlowNetwork copy = transformed.net;
    const auto result = flow::max_flow_dinic(copy);
    operations = result.operations;
    benchmark::DoNotOptimize(result.value);
  }
  const double v = static_cast<double>(transformed.net.node_count());
  const double e = static_cast<double>(transformed.net.arc_count());
  state.counters["edge_ops"] = static_cast<double>(operations);
  state.counters["ops/V^2/3*E"] =
      static_cast<double>(operations) / (std::pow(v, 2.0 / 3.0) * e);
}
BENCHMARK(BM_DinicOnOmegaMrsin)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256);

void BM_FordFulkersonOnOmegaMrsin(benchmark::State& state) {
  const topo::Network net =
      topo::make_omega(static_cast<std::int32_t>(state.range(0)));
  const core::Problem problem = full_problem(net);
  const core::TransformResult transformed = core::transformation1(problem);
  for (auto _ : state) {
    flow::FlowNetwork copy = transformed.net;
    benchmark::DoNotOptimize(flow::max_flow_ford_fulkerson(copy).value);
  }
}
BENCHMARK(BM_FordFulkersonOnOmegaMrsin)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_EndToEndSchedulingCycle(benchmark::State& state) {
  // Transformation + max-flow + circuit extraction: the monitor's whole
  // scheduling cycle.
  const topo::Network net =
      topo::make_omega(static_cast<std::int32_t>(state.range(0)));
  const core::Problem problem = full_problem(net);
  core::MaxFlowScheduler scheduler;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(problem).allocated());
  }
}
BENCHMARK(BM_EndToEndSchedulingCycle)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
