// Warm-start scheduling hot path: cold per-cycle rebuild vs ScheduleContext
// reuse (PersistentTransform + warm Dinic) on the E17 fault sweep.
//
// Three phases per topology:
//  1. differential check — WarmMaxFlowScheduler(verify=true) replays the
//     sweep; every cycle re-solves cold (transformation1 + Dinic) and
//     RSIN_ENSUREs the warm-start max-flow value matches. A divergence
//     aborts the bench.
//  2. timed cold replay  — MaxFlowScheduler(kDinic), the per-cycle rebuild.
//  3. timed warm replay  — WarmMaxFlowScheduler(verify=false), same cycles.
//
// Both timed replays consume the *same* precomputed stream of failure
// patterns and request/free sets, so the table's cycles/sec and heap
// allocations/cycle are an apples-to-apples comparison of the hot path.
// Acceptance: the warm path schedules >= 2x faster than the cold rebuild.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "fault/fault_injector.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

// --- heap probe -----------------------------------------------------------
// Counts every operator-new in the process while enabled. Single-threaded
// bench, so plain counters are fine.
namespace {
std::size_t g_allocation_count = 0;
bool g_count_allocations = false;
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocations) ++g_allocation_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (g_count_allocations) ++g_allocation_count;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace rsin;

/// One scheduling cycle of the precomputed sweep.
struct SweepCycle {
  std::size_t pattern = 0;  ///< Index into Workload::patterns.
  std::vector<core::Request> requests;
  std::vector<core::FreeResource> free_resources;
};

/// The E17 sweep, fully materialized so every replay sees identical input:
/// one network per failure pattern (0/1/2/4 dead fabric links), and for
/// each pattern `trials` random request/free snapshots.
struct Workload {
  std::vector<topo::Network> patterns;
  std::vector<SweepCycle> cycles;
};

Workload make_workload(std::int32_t n, int trials_per_pattern,
                       std::uint64_t seed) {
  Workload workload;
  util::Rng rng(seed);
  const fault::FaultConfig fault_config;  // fabric_links_only
  for (const int failures : {0, 1, 2, 4}) {
    topo::Network net = topo::make_named("omega", n);
    int killed = 0;
    while (killed < failures) {
      const auto link =
          static_cast<topo::LinkId>(rng.uniform_int(0, net.link_count() - 1));
      if (!fault::link_eligible(net, link, fault_config) ||
          net.link_failed(link)) {
        continue;
      }
      net.fail_link(link);
      ++killed;
    }
    workload.patterns.push_back(std::move(net));
  }
  for (std::size_t pattern = 0; pattern < workload.patterns.size();
       ++pattern) {
    const topo::Network& net = workload.patterns[pattern];
    for (int trial = 0; trial < trials_per_pattern; ++trial) {
      SweepCycle cycle;
      cycle.pattern = pattern;
      for (std::int32_t p = 0; p < net.processor_count(); ++p) {
        if (rng.bernoulli(0.6)) cycle.requests.push_back({.processor = p});
      }
      for (std::int32_t r = 0; r < net.resource_count(); ++r) {
        if (rng.bernoulli(0.6)) {
          cycle.free_resources.push_back({.resource = r});
        }
      }
      workload.cycles.push_back(std::move(cycle));
    }
  }
  return workload;
}

struct ReplayResult {
  double seconds = 0.0;
  std::size_t allocations = 0;
  std::int64_t allocated = 0;  ///< Total circuits granted (cross-check).
};

/// Feeds every cycle of the workload through the scheduler, reusing one
/// Problem object the way the DES scheduling loop does.
ReplayResult replay(core::Scheduler& scheduler, const Workload& workload) {
  core::Problem problem;
  ReplayResult result;
  g_allocation_count = 0;
  g_count_allocations = true;
  util::Stopwatch watch;
  for (const SweepCycle& cycle : workload.cycles) {
    problem.network = &workload.patterns[cycle.pattern];
    problem.requests = cycle.requests;
    problem.free_resources = cycle.free_resources;
    result.allocated +=
        static_cast<std::int64_t>(scheduler.schedule(problem).allocated());
  }
  result.seconds = watch.seconds();
  g_count_allocations = false;
  result.allocations = g_allocation_count;
  return result;
}

std::string per_cycle(std::size_t total, std::size_t cycles) {
  return util::fixed(static_cast<double>(total) / static_cast<double>(cycles),
                     1);
}

/// Runs the three phases on one topology size; returns the speedup.
double run_size(std::int32_t n, int trials_per_pattern, util::Table& table) {
  const Workload workload =
      make_workload(n, trials_per_pattern, 3000 + static_cast<std::uint64_t>(n));
  const auto cycles = workload.cycles.size();

  // Phase 1: differential check (throws on warm/cold value divergence).
  core::WarmMaxFlowScheduler checked(/*verify=*/true);
  const ReplayResult verified = replay(checked, workload);

  // Phases 2+3: timed replays of the identical cycle stream (best wall
  // time of three reps each, to keep the speedup ratio off the noise floor).
  core::MaxFlowScheduler cold;
  core::WarmMaxFlowScheduler warm(/*verify=*/false);
  ReplayResult cold_run = replay(cold, workload);
  ReplayResult warm_run = replay(warm, workload);
  for (int rep = 1; rep < 3; ++rep) {
    const ReplayResult cold_rep = replay(cold, workload);
    if (cold_rep.seconds < cold_run.seconds) cold_run = cold_rep;
    const ReplayResult warm_rep = replay(warm, workload);
    if (warm_rep.seconds < warm_run.seconds) warm_run = warm_rep;
  }

  RSIN_ENSURE(cold_run.allocated == warm_run.allocated &&
                  cold_run.allocated == verified.allocated,
              "cold and warm replays must grant the same circuit count");

  const double speedup = cold_run.seconds / warm_run.seconds;
  const auto& stats = checked.warm_stats();  // one replay's worth of cycles
  table.add(std::to_string(n) + "x" + std::to_string(n), cycles,
            util::fixed(static_cast<double>(cycles) / cold_run.seconds, 0),
            util::fixed(static_cast<double>(cycles) / warm_run.seconds, 0),
            util::fixed(speedup, 2) + "x",
            per_cycle(cold_run.allocations, cycles),
            per_cycle(warm_run.allocations, cycles), stats.warm_cycles,
            stats.cold_rebuilds);
  return speedup;
}

}  // namespace

int main() {
  std::cout << "=== warm-start scheduling hot path (E17 fault sweep: omega, "
               "0/1/2/4 dead links, 60% load) ===\n\n";
  util::Table table({"network", "cycles", "cold cyc/s", "warm cyc/s",
                     "speedup", "allocs/cyc cold", "allocs/cyc warm",
                     "warm cycles", "cold rebuilds"});
  const double speedup_small = run_size(8, 600, table);
  run_size(32, 150, table);  // scaling datapoint (hovers around 2x)
  std::cout << table
            << "\nevery cycle passed the differential check (warm-start "
               "Dinic value == cold transformation1 + Dinic value)\n";
  const bool pass = speedup_small >= 2.0;
  std::cout << "acceptance (warm >= 2x cold on the E17 workload): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
