// E9 — Section II's closing observation: "If extra stages are provided,
// there will be more paths available. Resources may be fully allocated in
// most cases even when an arbitrary resource-request mapping is used.
// Finding an optimal mapping becomes less critical."
//
// We sweep the number of extra shuffle-exchange stages on an 8x8 Omega and
// measure blocking for the optimal scheduler and the first-fit heuristic:
// both should fall toward zero and the optimal/heuristic gap should close.
#include <iostream>

#include "core/scheduler.hpp"
#include "sim/static_experiment.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsin;
  std::cout << "=== E9: extra stages reduce blocking and shrink the "
               "optimal-vs-heuristic gap ===\n\n";

  util::Table table({"extra stages", "paths per pair", "optimal %",
                     "first-fit %", "address-mapped %", "gap (fit-opt)"});

  for (const std::int32_t extra : {0, 1, 2, 3}) {
    const topo::Network net = topo::make_omega(8, extra);
    sim::StaticExperimentConfig config;
    config.trials = 2000;
    config.request_probability = 0.75;
    config.free_probability = 0.75;
    config.seed = 11;

    core::MaxFlowScheduler optimal;
    core::GreedyScheduler greedy;
    core::RandomScheduler address_mapped{util::Rng(13)};
    const auto opt = sim::run_static_experiment(net, optimal, config);
    const auto fit = sim::run_static_experiment(net, greedy, config);
    const auto adr = sim::run_static_experiment(net, address_mapped, config);

    table.add(extra, 1 << extra, util::pct(opt.blocking_probability()),
              util::pct(fit.blocking_probability()),
              util::pct(adr.blocking_probability()),
              util::pct(fit.blocking_probability() -
                        opt.blocking_probability()));
  }
  std::cout << table
            << "\nwith redundant paths even arbitrary mappings rarely "
               "block; optimal scheduling matters most in the unique-path "
               "(0 extra stage) fabric\n";
  return 0;
}
