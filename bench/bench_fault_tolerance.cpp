// E17 — fault tolerance through redundant paths (Section IV: "there is no
// significant advantage of a distributed implementation over a monitor
// architecture except for reasons such as fault tolerance and modularity";
// conclusion: the method applies unchanged to redundant-path fabrics).
//
// We fail random links (modeled as permanently occupied) and measure how
// much allocation capability each topology retains under the optimal
// scheduler. Unique-path delta networks lose pairs with every failed link;
// the extra-stage Omega, gamma, and Benes fabrics route around faults.
#include <iostream>

#include "core/scheduler.hpp"
#include "sim/static_experiment.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace rsin;

/// Blocking probability with `failures` random dead links (averaged over
/// several failure patterns).
double blocking_with_failures(const std::string& topology, int failures,
                              std::uint64_t seed) {
  core::MaxFlowScheduler scheduler;
  double blocking_sum = 0.0;
  const int patterns = 5;
  for (int pattern = 0; pattern < patterns; ++pattern) {
    topo::Network net = topology == "omega+1"
                            ? topo::make_omega(8, 1)
                            : topo::make_named(topology, 8);
    util::Rng rng(seed + static_cast<std::uint64_t>(pattern));
    int killed = 0;
    while (killed < failures) {
      const auto link = static_cast<topo::LinkId>(
          rng.uniform_int(0, net.link_count() - 1));
      // Only fail fabric links (keep terminals attached so the experiment
      // measures routing redundancy, not amputation).
      const topo::Link& l = net.link(link);
      if (l.occupied || l.from.kind != topo::NodeKind::kSwitch ||
          l.to.kind != topo::NodeKind::kSwitch) {
        continue;
      }
      net.occupy_link(link);
      ++killed;
    }
    sim::StaticExperimentConfig config;
    config.trials = 600;
    config.request_probability = 0.6;
    config.free_probability = 0.6;
    config.seed = seed ^ 0xbeef;
    const auto result = sim::run_static_experiment(net, scheduler, config);
    blocking_sum += result.blocking_probability();
  }
  return blocking_sum / patterns;
}

}  // namespace

int main() {
  std::cout << "=== E17: blocking under random fabric-link failures "
               "(optimal scheduler, 8x8) ===\n\n";
  util::Table table({"network", "0 faults %", "1 fault %", "2 faults %",
                     "4 faults %"});
  for (const char* topology :
       {"omega", "cube", "omega+1", "gamma", "benes"}) {
    std::vector<std::string> row{topology};
    for (const int faults : {0, 1, 2, 4}) {
      row.push_back(util::pct(blocking_with_failures(
          topology, faults, 3000 + static_cast<std::uint64_t>(faults))));
    }
    table.add_row(row);
  }
  std::cout << table
            << "\nunique-path fabrics (omega, cube) degrade with every "
               "fault; one extra stage, the gamma network, or a Benes "
               "fabric absorbs them — the redundancy argument of the "
               "paper's conclusion\n";
  return 0;
}
