// E17 — fault tolerance through redundant paths (Section IV: "there is no
// significant advantage of a distributed implementation over a monitor
// architecture except for reasons such as fault tolerance and modularity";
// conclusion: the method applies unchanged to redundant-path fabrics).
//
// Part 1: permanent faults. We fail random fabric links through the
// first-class fault API (Network::fail_link) and measure how much
// allocation capability each topology retains under the optimal scheduler.
// Unique-path delta networks lose pairs with every failed link; the
// extra-stage Omega, gamma, and Benes fabrics route around faults.
//
// Part 2: transient faults. The discrete-event system simulation replays a
// seeded MTTF/MTTR fail/repair stream; failures tear down circuits
// mid-transmission and the victims retry under backoff. The sweep shows
// availability, the retry tax, and the throughput cost as links become
// less reliable.
#include <iostream>

#include "core/scheduler.hpp"
#include "fault/fault_injector.hpp"
#include "sim/static_experiment.hpp"
#include "sim/system_sim.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace rsin;

/// Blocking probability with `failures` random dead fabric links (averaged
/// over several failure patterns).
double blocking_with_failures(const std::string& topology, int failures,
                              std::uint64_t seed) {
  // The warm-start scheduler keeps its residual state across the sweep's
  // trials and failure patterns. Its max-flow value — and therefore every
  // blocking number below — matches the cold MaxFlowScheduler's exactly
  // (bench_warm_start runs the differential check); only the tie-breaking
  // among equally optimal assignments can differ.
  core::WarmMaxFlowScheduler scheduler(/*verify=*/false);
  double blocking_sum = 0.0;
  const int patterns = 5;
  const fault::FaultConfig fault_config;  // fabric_links_only
  for (int pattern = 0; pattern < patterns; ++pattern) {
    topo::Network net = topology == "omega+1"
                            ? topo::make_omega(8, 1)
                            : topo::make_named(topology, 8);
    util::Rng rng(seed + static_cast<std::uint64_t>(pattern));
    int killed = 0;
    while (killed < failures) {
      const auto link = static_cast<topo::LinkId>(
          rng.uniform_int(0, net.link_count() - 1));
      if (!fault::link_eligible(net, link, fault_config) ||
          net.link_failed(link)) {
        continue;
      }
      net.fail_link(link);
      ++killed;
    }
    sim::StaticExperimentConfig config;
    config.trials = 600;
    config.request_probability = 0.6;
    config.free_probability = 0.6;
    config.seed = seed ^ 0xbeef;
    const auto result = sim::run_static_experiment(net, scheduler, config);
    blocking_sum += result.blocking_probability();
  }
  return blocking_sum / patterns;
}

void transient_sweep() {
  std::cout << "\n=== E17b: transient faults in the DES (omega 8, optimal "
               "scheduler, MTTR = 2) ===\n\n";
  const topo::Network net = topo::make_named("omega", 8);
  util::Table table({"link MTTF", "availability", "faults", "retries",
                     "dropped", "utilization", "blocking %"});
  for (const double mttf : {0.0, 60.0, 30.0, 15.0, 8.0}) {
    core::WarmMaxFlowScheduler scheduler(/*verify=*/false);
    sim::SystemConfig config;
    config.arrival_rate = 0.8;
    config.warmup_time = 50.0;
    config.measure_time = 500.0;
    config.seed = 17;
    config.drop_timeout = 50.0;
    config.faults.link_mttf = mttf;
    config.faults.link_mttr = 2.0;
    config.faults.seed = 1700;
    const sim::SystemMetrics metrics =
        sim::simulate_system(net, scheduler, config);
    table.add(mttf > 0.0 ? util::fixed(mttf, 0) : "none",
              util::fixed(metrics.availability, 4), metrics.faults_injected,
              metrics.retries, metrics.tasks_dropped,
              util::fixed(metrics.resource_utilization, 3),
              util::pct(metrics.blocking_probability));
  }
  std::cout << table
            << "\nshorter MTTF -> lower availability and a growing retry "
               "tax; the scheduler keeps routing around the holes, so "
               "throughput degrades gracefully instead of hanging\n";
}

}  // namespace

int main() {
  std::cout << "=== E17: blocking under random fabric-link failures "
               "(optimal scheduler, 8x8) ===\n\n";
  util::Table table({"network", "0 faults %", "1 fault %", "2 faults %",
                     "4 faults %"});
  for (const char* topology :
       {"omega", "cube", "omega+1", "gamma", "benes"}) {
    std::vector<std::string> row{topology};
    for (const int faults : {0, 1, 2, 4}) {
      row.push_back(util::pct(blocking_with_failures(
          topology, faults, 3000 + static_cast<std::uint64_t>(faults))));
    }
    table.add_row(row);
  }
  std::cout << table
            << "\nunique-path fabrics (omega, cube) degrade with every "
               "fault; one extra stage, the gamma network, or a Benes "
               "fabric absorbs them — the redundancy argument of the "
               "paper's conclusion\n";
  transient_sweep();
  return 0;
}
