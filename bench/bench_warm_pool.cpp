// E21 — sharded warm-context pool vs per-batch cold rebuild (1/2/4/8
// threads), plus the batching-policy latency/throughput trade in the DES.
//
// Phase A (acceptance): the E17-style cycle stream (omega 8, 0/1/2/4 dead
// fabric links, 60% load) is chopped into batches and drained by a worker
// team, mirroring run_static_experiment_parallel's scheduler-per-batch
// regime. Three strategies drain the identical stream:
//   cold/batch    — a fresh MaxFlowScheduler(kDinic) per batch (the seed
//                   behavior this PR replaces: transformation1 + Dinic +
//                   allocations every cycle);
//   warm/batch    — a fresh WarmMaxFlowScheduler per batch (warm within a
//                   batch, rebuilt cold at every batch boundary);
//   pooled        — WarmContextPool checkout per batch, one shard per
//                   worker: batch boundaries keep the skeleton + residual.
// All three must grant the same circuit total. Acceptance: pooled >= 1.5x
// cold/batch cycles/sec at 4 threads.
//
// Phase B (informational): the real experiment entry points — parallel
// (cold factory) vs pooled — on a 4000-trial blocking sweep.
//
// Phase C (informational): DES batching window sweep; deferrals trade mean
// wait for fewer (bigger) solves at identical task throughput.
#include <atomic>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/batching.hpp"
#include "core/scheduler.hpp"
#include "core/warm_pool.hpp"
#include "fault/fault_injector.hpp"
#include "sim/static_experiment.hpp"
#include "sim/system_sim.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace rsin;

struct SweepCycle {
  std::size_t pattern = 0;
  std::vector<core::Request> requests;
  std::vector<core::FreeResource> free_resources;
};

struct Workload {
  std::vector<topo::Network> patterns;
  std::vector<SweepCycle> cycles;
};

Workload make_workload(std::int32_t n, int trials_per_pattern,
                       std::uint64_t seed) {
  Workload workload;
  util::Rng rng(seed);
  const fault::FaultConfig fault_config;  // fabric_links_only
  for (const int failures : {0, 1, 2, 4}) {
    topo::Network net = topo::make_named("omega", n);
    int killed = 0;
    while (killed < failures) {
      const auto link =
          static_cast<topo::LinkId>(rng.uniform_int(0, net.link_count() - 1));
      if (!fault::link_eligible(net, link, fault_config) ||
          net.link_failed(link)) {
        continue;
      }
      net.fail_link(link);
      ++killed;
    }
    workload.patterns.push_back(std::move(net));
  }
  for (std::size_t pattern = 0; pattern < workload.patterns.size();
       ++pattern) {
    const topo::Network& net = workload.patterns[pattern];
    for (int trial = 0; trial < trials_per_pattern; ++trial) {
      SweepCycle cycle;
      cycle.pattern = pattern;
      for (std::int32_t p = 0; p < net.processor_count(); ++p) {
        if (rng.bernoulli(0.6)) cycle.requests.push_back({.processor = p});
      }
      for (std::int32_t r = 0; r < net.resource_count(); ++r) {
        if (rng.bernoulli(0.6)) {
          cycle.free_resources.push_back({.resource = r});
        }
      }
      workload.cycles.push_back(std::move(cycle));
    }
  }
  return workload;
}

constexpr std::size_t kBatchCycles = 16;

/// Creates the scheduler one worker uses for one batch.
using BatchSchedulerFactory =
    std::function<std::unique_ptr<core::Scheduler>(std::size_t worker)>;

struct TeamResult {
  double seconds = 0.0;
  std::int64_t allocated = 0;
};

/// Drains the workload's batches with `threads` workers, a fresh scheduler
/// per batch (from `make`), mirroring run_static_experiment_parallel's
/// claim-a-batch loop. Patterns are shared read-only; every other object is
/// worker-private.
TeamResult drain(const Workload& workload, int threads,
                 const BatchSchedulerFactory& make) {
  const std::size_t batches =
      (workload.cycles.size() + kBatchCycles - 1) / kBatchCycles;
  std::atomic<std::size_t> next_batch{0};
  std::atomic<std::int64_t> allocated{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  util::Stopwatch watch;
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      core::Problem problem;
      std::int64_t local = 0;
      while (true) {
        const std::size_t batch = next_batch.fetch_add(1);
        if (batch >= batches) break;
        const auto scheduler = make(static_cast<std::size_t>(w));
        const std::size_t begin = batch * kBatchCycles;
        const std::size_t end =
            std::min(begin + kBatchCycles, workload.cycles.size());
        for (std::size_t i = begin; i < end; ++i) {
          const SweepCycle& cycle = workload.cycles[i];
          problem.network = &workload.patterns[cycle.pattern];
          problem.requests = cycle.requests;
          problem.free_resources = cycle.free_resources;
          local += static_cast<std::int64_t>(
              scheduler->schedule(problem).allocated());
        }
      }
      allocated.fetch_add(local);
    });
  }
  for (std::thread& thread : workers) thread.join();
  TeamResult result;
  result.seconds = watch.seconds();
  result.allocated = allocated.load();
  return result;
}

TeamResult best_of(int reps, const Workload& workload, int threads,
                   const BatchSchedulerFactory& make) {
  TeamResult best = drain(workload, threads, make);
  for (int rep = 1; rep < reps; ++rep) {
    const TeamResult next = drain(workload, threads, make);
    RSIN_ENSURE(next.allocated == best.allocated,
                "replays of the same stream must grant the same total");
    if (next.seconds < best.seconds) best = next;
  }
  return best;
}

double phase_a(util::Table& table) {
  const Workload workload = make_workload(8, 400, 3008);
  const topo::Network& shape = workload.patterns.front();
  const auto cycles = static_cast<double>(workload.cycles.size());
  double speedup_at_4 = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    const TeamResult cold = best_of(2, workload, threads, [](std::size_t) {
      return std::make_unique<core::MaxFlowScheduler>(
          flow::MaxFlowAlgorithm::kDinic);
    });
    const TeamResult fresh = best_of(2, workload, threads, [](std::size_t) {
      return std::make_unique<core::WarmMaxFlowScheduler>(/*verify=*/false);
    });
    core::WarmContextPool pool(static_cast<std::size_t>(threads));
    const TeamResult pooled =
        best_of(2, workload, threads, [&pool, &shape](std::size_t worker) {
          return std::make_unique<core::WarmMaxFlowScheduler>(
              pool.checkout(worker, shape), /*verify=*/false);
        });
    RSIN_ENSURE(cold.allocated == fresh.allocated &&
                    cold.allocated == pooled.allocated,
                "all three strategies must grant the same circuit total");
    const double speedup = cold.seconds / pooled.seconds;
    if (threads == 4) speedup_at_4 = speedup;
    const auto stats = pool.stats();
    table.add(threads, workload.cycles.size(),
              util::fixed(cycles / cold.seconds, 0),
              util::fixed(cycles / fresh.seconds, 0),
              util::fixed(cycles / pooled.seconds, 0),
              util::fixed(speedup, 2) + "x",
              std::to_string(stats.warm_hits) + "/" +
                  std::to_string(stats.checkouts));
  }
  return speedup_at_4;
}

void phase_b() {
  const topo::Network net = topo::make_named("omega", 8);
  sim::StaticExperimentConfig config;
  config.trials = 4000;
  config.seed = 21;
  constexpr int kThreads = 4;

  util::Stopwatch parallel_watch;
  const auto parallel = sim::run_static_experiment_parallel(
      net,
      [] {
        return std::make_unique<core::MaxFlowScheduler>(
            flow::MaxFlowAlgorithm::kDinic);
      },
      config, kThreads);
  const double parallel_seconds = parallel_watch.seconds();

  core::WarmContextPool pool(kThreads);
  util::Stopwatch pooled_watch;
  const auto pooled = sim::run_static_experiment_pooled(
      net, pool, config, kThreads, /*canonical=*/false, /*verify=*/false);
  const double pooled_seconds = pooled_watch.seconds();

  RSIN_ENSURE(parallel.total_allocated == pooled.total_allocated,
              "pooled sweep diverged from the cold-factory sweep");
  util::Table table({"entry point", "trials", "blocking %", "seconds",
                     "speedup"});
  table.add("parallel (cold factory)", parallel.trials,
            util::pct(parallel.blocking_probability()),
            util::fixed(parallel_seconds, 3), "1.00x");
  table.add("pooled (sharded warm)", pooled.trials,
            util::pct(pooled.blocking_probability()),
            util::fixed(pooled_seconds, 3),
            util::fixed(parallel_seconds / pooled_seconds, 2) + "x");
  std::cout << "\n--- E21b: run_static_experiment_parallel vs _pooled "
               "(omega 8, 4 threads, identical results) ---\n"
            << table;
}

void phase_c() {
  const topo::Network net = topo::make_named("omega", 8);
  util::Table table({"window", "deadline", "solved", "deferred", "blocking %",
                     "mean wait", "completed"});
  for (const std::int32_t window : {1, 2, 4, 8}) {
    sim::SystemConfig config;
    config.arrival_rate = 0.9;
    config.warmup_time = 20.0;
    config.measure_time = 400.0;
    config.seed = 5;
    const std::int32_t deadline = window > 1 ? std::max(1, window / 2) : 0;
    core::BatchingScheduler scheduler(
        std::make_unique<core::WarmMaxFlowScheduler>(/*verify=*/false),
        {window, deadline});
    const sim::SystemMetrics metrics =
        sim::simulate_system(net, scheduler, config);
    table.add(window, deadline, metrics.scheduling_cycles,
              metrics.deferred_cycles, util::pct(metrics.blocking_probability),
              util::fixed(metrics.mean_wait_time, 3), metrics.tasks_completed);
  }
  std::cout << "\n--- E21c: DES batching window sweep (omega 8, load 0.9) "
               "---\n"
            << table
            << "bigger windows defer more cycles (fewer, larger solves) and "
               "trade mean wait for per-drain amortization\n";
}

}  // namespace

int main() {
  std::cout << "=== E21: sharded warm-context pool vs per-batch cold "
               "rebuild (omega 8, E17 fault sweep, batches of "
            << kBatchCycles << " cycles) ===\n\n";
  util::Table table({"threads", "cycles", "cold/batch cyc/s",
                     "warm/batch cyc/s", "pooled cyc/s", "pooled/cold",
                     "pool warm hits"});
  const double speedup_at_4 = phase_a(table);
  std::cout << table;
  phase_b();
  phase_c();
  const bool pass = speedup_at_4 >= 1.5;
  std::cout << "\nacceptance (pooled >= 1.5x cold/batch at 4 threads): "
            << (pass ? "PASS" : "FAIL") << " ("
            << (speedup_at_4 > 0 ? std::to_string(speedup_at_4).substr(0, 4)
                                 : "n/a")
            << "x)\n";
  return pass ? 0 : 1;
}
