// E16 — the hardware cost of the distributed architecture (Section IV-B:
// "the design has a very low gate count and a very short token propagation
// delay").
//
// Tabulates the first-order model of token/hardware_model.hpp over growing
// fabrics: per-switch cost is a small constant, totals grow with the
// element count (n log n for an n x n MIN), and the scheduling latency in
// clock periods grows only logarithmically-ish with n while the monitor's
// instruction count grows super-linearly — the architecture's whole case.
#include <iostream>

#include "token/hardware_model.hpp"
#include "token/monitor.hpp"
#include "token/token_machine.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsin;
  std::cout << "=== E16: hardware cost and latency of the token "
               "architecture ===\n\n";

  util::Table table({"omega n", "elements", "flip-flops", "gates",
                     "bus taps", "cycle clocks (full load)",
                     "monitor instrs"});

  for (const std::int32_t n : {8, 16, 32, 64, 128}) {
    const topo::Network net = topo::make_omega(n);
    const token::HardwareCost cost = token::estimate_hardware(net);

    std::vector<topo::ProcessorId> requesting;
    std::vector<topo::ResourceId> available;
    for (std::int32_t i = 0; i < n; ++i) {
      requesting.push_back(i);
      available.push_back(i);
    }
    const core::Problem problem =
        core::make_problem(net, requesting, available);
    token::TokenMachine machine(problem);
    token::TokenStats stats;
    machine.run(&stats);
    token::MonitorStats monitor_stats;
    token::Monitor().run(problem, &monitor_stats);

    table.add(n, cost.elements, cost.registers, cost.gates, cost.bus_taps,
              stats.clock_periods, monitor_stats.total());
  }
  std::cout << table
            << "\nper 2x2 switchbox: 11 flip-flops, 34 gates, 3 wired-OR "
               "taps — constants at every size\n(and a token clock period "
               "is a gate delay, not an instruction cycle)\n";
  return 0;
}
