// E14 — analytic versus simulated blocking (Patel's delta-network model,
// reference [37] of the paper, versus our Monte-Carlo measurements).
//
// Patel's recurrence p_{i+1} = 1 - (1 - p_i/2)^2 models conventional
// address mapping with independent random destinations. Three curves per
// load level:
//   * analytic blocking of the model;
//   * measured blocking of the address-mapped(independent) baseline — the
//     regime the model describes (should track the analytic curve);
//   * measured blocking of the flow-optimal scheduler — the RSIN's
//     distributed scheduling (should sit far below both).
#include <iostream>

#include "core/scheduler.hpp"
#include "sim/analytic.hpp"
#include "sim/static_experiment.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsin;
  std::cout << "=== E14: Patel's analytic banyan model vs measured blocking "
               "(8x8 Omega, 3 stages) ===\n\n";

  util::Table table({"load", "analytic %", "addr-mapped(independent) %",
                     "addr-mapped(distinct) %", "optimal %"});

  const topo::Network net = topo::make_omega(8);
  for (const double load : {0.25, 0.5, 0.75, 1.0}) {
    sim::StaticExperimentConfig config;
    config.trials = 3000;
    config.request_probability = load;
    config.free_probability = 1.0;  // the model assumes all outputs usable
    config.seed = 77;

    core::RandomScheduler independent(util::Rng(1), true);
    core::RandomScheduler distinct(util::Rng(2), false);
    core::MaxFlowScheduler optimal;
    const auto ind = sim::run_static_experiment(net, independent, config);
    const auto dis = sim::run_static_experiment(net, distinct, config);
    const auto opt = sim::run_static_experiment(net, optimal, config);
    table.add(util::fixed(load, 2),
              util::pct(sim::banyan_blocking(load, 3)),
              util::pct(ind.blocking_probability()),
              util::pct(dis.blocking_probability()),
              util::pct(opt.blocking_probability()));
  }
  std::cout << table
            << "\nthe independent-destination baseline tracks Patel's "
               "model; distributed optimal scheduling eliminates nearly "
               "all of that blocking\n";
  return 0;
}
