// E8 — Section IV / Table I / Fig. 10: the distributed token-propagation
// architecture versus the centralized monitor.
//
// For growing Omega MRSINs under a fixed load, this harness reports:
//   * allocations (must be identical — the token machine realizes Dinic);
//   * the monitor's instruction count (its cost unit, per the paper);
//   * the token machine's clock periods and iterations (its cost unit);
//   * the instructions-per-clock ratio — the speedup proxy. The paper's
//     claim is qualitative ("a much higher speed ... augmenting paths are
//     searched in parallel; complexity measured in gate delays"), so the
//     ratio growing with system size is the shape to look for.
// It also prints one full status-bus trace (Table I vectors).
#include <iostream>

#include "sim/static_experiment.hpp"
#include "token/element_machine.hpp"
#include "token/monitor.hpp"
#include "token/token_machine.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsin;
  std::cout << "=== E8: token-propagation architecture vs monitor "
               "architecture ===\n\n";

  util::Table table({"omega n", "allocated (all)", "monitor instrs",
                     "token clocks", "element-FSM clocks", "iterations",
                     "instrs/clock"});

  for (const std::int32_t n : {8, 16, 32, 64, 128}) {
    const topo::Network net = topo::make_omega(n);
    util::Rng rng(500 + static_cast<std::uint64_t>(n));
    // Average over several random instances at 60% density.
    std::int64_t monitor_instructions = 0;
    std::int64_t token_clocks = 0;
    std::int64_t element_clocks = 0;
    std::int64_t iterations = 0;
    std::int64_t allocated = 0;
    bool all_equal = true;
    const int rounds = 10;
    for (int round = 0; round < rounds; ++round) {
      std::vector<topo::ProcessorId> requesting;
      std::vector<topo::ResourceId> available;
      for (std::int32_t i = 0; i < n; ++i) {
        if (rng.bernoulli(0.6)) requesting.push_back(i);
        if (rng.bernoulli(0.6)) available.push_back(i);
      }
      const core::Problem problem =
          core::make_problem(net, requesting, available);

      token::Monitor monitor;
      token::MonitorStats monitor_stats;
      const auto monitor_result = monitor.run(problem, &monitor_stats);

      token::TokenMachine machine(problem);
      token::TokenStats token_stats;
      const auto token_result = machine.run(&token_stats);

      token::ElementMachine element_machine(problem);
      token::ElementStats element_stats;
      const auto element_result = element_machine.run(&element_stats);

      all_equal &= monitor_result.allocated() == token_result.allocated();
      all_equal &= element_result.allocated() == token_result.allocated();
      element_clocks += element_stats.clock_periods;
      allocated += static_cast<std::int64_t>(token_result.allocated());
      monitor_instructions += monitor_stats.total();
      token_clocks += token_stats.clock_periods;
      iterations += token_stats.iterations;
    }
    table.add(n, allocated / rounds,
              monitor_instructions / rounds, token_clocks / rounds,
              element_clocks / rounds, iterations / rounds,
              util::fixed(static_cast<double>(monitor_instructions) /
                              static_cast<double>(token_clocks),
                          1));
    if (!all_equal) {
      std::cout << "MISMATCH: token machine diverged from Dinic at n=" << n
                << "\n";
      return 1;
    }
  }
  std::cout << table << '\n';

  // One bus trace, Fig. 10 / Table I style.
  const topo::Network net = topo::make_omega(8);
  const core::Problem problem =
      core::make_problem(net, {0, 2, 4, 6, 7}, {0, 2, 4, 6, 7});
  token::TokenMachine machine(problem);
  token::TokenStats stats;
  machine.run(&stats);
  std::cout << "status-bus trace for the Fig. 2 instance (E1..E6 + x):\n";
  for (const token::BusSample& sample : stats.bus_trace) {
    std::cout << "  clock " << sample.clock << "  "
              << token::bus_vector_x(sample.bits) << "  " << sample.label
              << '\n';
  }
  std::cout << "\n(the vectors 111000x / 111001x / 110100x / 110110x are the "
               "states named in Section IV-B-3)\n";
  return 0;
}
