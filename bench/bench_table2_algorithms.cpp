// E6 — Table II: the per-discipline scheduling algorithms, timed.
//
// Table II maps each scheduling discipline to its flow problem and
// algorithm:
//   homogeneous / no priority      -> max flow         (Ford-Fulkerson, Dinic)
//   homogeneous + priority/pref    -> min-cost flow    (out-of-kilter)
//   heterogeneous, restricted topo -> real/integer multicommodity (simplex)
// This google-benchmark binary times each algorithm on MRSIN-derived
// networks of growing size, regenerating the table's "equivalent flow
// problem / algorithm" rows with measured costs.
#include <benchmark/benchmark.h>

#include "core/hetero.hpp"
#include "core/scheduler.hpp"
#include "core/transform.hpp"
#include "flow/max_flow.hpp"
#include "flow/min_cost.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace {

using namespace rsin;

core::Problem dense_problem(const topo::Network& net, int priority_levels,
                            int types, std::uint64_t seed) {
  util::Rng rng(seed);
  core::Problem problem;
  problem.network = &net;
  for (topo::ProcessorId p = 0; p < net.processor_count(); ++p) {
    if (!rng.bernoulli(0.7)) continue;
    core::Request request;
    request.processor = p;
    request.priority = priority_levels > 0
                           ? static_cast<std::int32_t>(
                                 rng.uniform_int(1, priority_levels))
                           : 0;
    request.type =
        types > 1 ? static_cast<std::int32_t>(rng.uniform_int(0, types - 1))
                  : 0;
    problem.requests.push_back(request);
  }
  for (topo::ResourceId r = 0; r < net.resource_count(); ++r) {
    if (!rng.bernoulli(0.7)) continue;
    core::FreeResource resource;
    resource.resource = r;
    resource.preference = priority_levels > 0
                              ? static_cast<std::int32_t>(
                                    rng.uniform_int(1, priority_levels))
                              : 0;
    resource.type =
        types > 1 ? static_cast<std::int32_t>(rng.uniform_int(0, types - 1))
                  : 0;
    problem.free_resources.push_back(resource);
  }
  return problem;
}

void BM_MaxFlow_FordFulkerson(benchmark::State& state) {
  const topo::Network net =
      topo::make_omega(static_cast<std::int32_t>(state.range(0)));
  const core::Problem problem = dense_problem(net, 0, 1, 1);
  const core::TransformResult transformed = core::transformation1(problem);
  for (auto _ : state) {
    flow::FlowNetwork copy = transformed.net;
    benchmark::DoNotOptimize(flow::max_flow_ford_fulkerson(copy).value);
  }
}
BENCHMARK(BM_MaxFlow_FordFulkerson)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_MaxFlow_EdmondsKarp(benchmark::State& state) {
  const topo::Network net =
      topo::make_omega(static_cast<std::int32_t>(state.range(0)));
  const core::Problem problem = dense_problem(net, 0, 1, 1);
  const core::TransformResult transformed = core::transformation1(problem);
  for (auto _ : state) {
    flow::FlowNetwork copy = transformed.net;
    benchmark::DoNotOptimize(flow::max_flow_edmonds_karp(copy).value);
  }
}
BENCHMARK(BM_MaxFlow_EdmondsKarp)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_MaxFlow_Dinic(benchmark::State& state) {
  const topo::Network net =
      topo::make_omega(static_cast<std::int32_t>(state.range(0)));
  const core::Problem problem = dense_problem(net, 0, 1, 1);
  const core::TransformResult transformed = core::transformation1(problem);
  for (auto _ : state) {
    flow::FlowNetwork copy = transformed.net;
    benchmark::DoNotOptimize(flow::max_flow_dinic(copy).value);
  }
}
BENCHMARK(BM_MaxFlow_Dinic)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_MinCost_OutOfKilter(benchmark::State& state) {
  const topo::Network net =
      topo::make_omega(static_cast<std::int32_t>(state.range(0)));
  const core::Problem problem = dense_problem(net, 10, 1, 2);
  const core::TransformResult transformed = core::transformation2(problem);
  for (auto _ : state) {
    flow::FlowNetwork copy = transformed.net;
    benchmark::DoNotOptimize(
        flow::min_cost_flow_out_of_kilter(copy, transformed.request_count)
            .cost);
  }
}
BENCHMARK(BM_MinCost_OutOfKilter)->Arg(8)->Arg(16)->Arg(32);

void BM_MinCost_NetworkSimplex(benchmark::State& state) {
  const topo::Network net =
      topo::make_omega(static_cast<std::int32_t>(state.range(0)));
  const core::Problem problem = dense_problem(net, 10, 1, 2);
  const core::TransformResult transformed = core::transformation2(problem);
  for (auto _ : state) {
    flow::FlowNetwork copy = transformed.net;
    benchmark::DoNotOptimize(
        flow::min_cost_flow_network_simplex(copy, transformed.request_count)
            .cost);
  }
}
BENCHMARK(BM_MinCost_NetworkSimplex)->Arg(8)->Arg(16)->Arg(32);

void BM_MinCost_Ssp(benchmark::State& state) {
  const topo::Network net =
      topo::make_omega(static_cast<std::int32_t>(state.range(0)));
  const core::Problem problem = dense_problem(net, 10, 1, 2);
  const core::TransformResult transformed = core::transformation2(problem);
  for (auto _ : state) {
    flow::FlowNetwork copy = transformed.net;
    benchmark::DoNotOptimize(
        flow::min_cost_flow_ssp(copy, transformed.request_count).cost);
  }
}
BENCHMARK(BM_MinCost_Ssp)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_Multicommodity_Simplex(benchmark::State& state) {
  const topo::Network net =
      topo::make_omega(static_cast<std::int32_t>(state.range(0)));
  const core::Problem problem = dense_problem(net, 0, 3, 3);
  core::HeteroLpScheduler scheduler;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule_detailed(problem).lp_value);
  }
}
BENCHMARK(BM_Multicommodity_Simplex)->Arg(8)->Arg(16);

void BM_Exhaustive_GroundTruth(benchmark::State& state) {
  // The scheme Table II replaces: exponential enumeration (tiny sizes only).
  const topo::Network net =
      topo::make_omega(static_cast<std::int32_t>(state.range(0)));
  const core::Problem problem = dense_problem(net, 0, 1, 4);
  core::ExhaustiveScheduler scheduler;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(problem).allocated());
  }
}
BENCHMARK(BM_Exhaustive_GroundTruth)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
