// Chaos soak harness for the overload-safe runtime.
//
// Sweeps randomized (topology, fault schedule, overload burst, queue bound,
// shed policy) scenarios through the discrete-event system simulation with
// every runtime self-check armed: the circuit-breaker scheduler runs its
// warm/cold differential check each cycle, per-cycle invariants (circuit
// bookkeeping, queue bounds, task conservation) are validated, and every
// run is recorded. Any violation is shrunk to a smaller failing horizon,
// its trace is saved to disk, and the saved trace is verified to reproduce
// the failure under replay before the harness exits nonzero.
//
// Usage:
//   soak_chaos [--scenarios=N] [--seed=S] [--measure=T] [--trace-dir=DIR]
//              [--batch-window=W] [--sabotage]
//
//   --scenarios=N   number of randomized scenarios (default 200)
//   --seed=S        master seed for the scenario generator (default 2026)
//   --measure=T     measured horizon per scenario (default 40 time units)
//   --trace-dir=DIR where failing traces are written (default ".")
//   --batch-window=W  fix the cycle-batching window (>=1); default -1
//                   randomizes it per scenario from {1, 1, 2, 3, 4} so the
//                   soak also exercises deferred cycles, deadline drains,
//                   and the overload ladder's reset of a half-full window
//   --sabotage      additionally run a deliberately-broken scheduler and
//                   require the harness to catch it, dump a replayable
//                   trace, and reload + replay it (self-test of the
//                   failure path; exits nonzero if the sabotage is MISSED)
#include <algorithm>
#include <exception>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/batching.hpp"
#include "core/scheduler.hpp"
#include "sim/system_sim.hpp"
#include "sim/trace.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace {

using namespace rsin;

struct SoakOptions {
  std::int64_t scenarios = 200;
  std::uint64_t seed = 2026;
  double measure = 40.0;
  std::string trace_dir = ".";
  std::int32_t batch_window = -1;  // -1: randomize per scenario
  bool sabotage = false;
};

SoakOptions parse_args(int argc, char** argv) {
  SoakOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--scenarios") {
      options.scenarios = std::stoll(value);
    } else if (key == "--seed") {
      options.seed = std::stoull(value);
    } else if (key == "--measure") {
      options.measure = std::stod(value);
    } else if (key == "--trace-dir") {
      options.trace_dir = value;
    } else if (key == "--batch-window") {
      options.batch_window = static_cast<std::int32_t>(std::stol(value));
    } else if (key == "--sabotage") {
      options.sabotage = true;
    } else {
      throw std::invalid_argument("unknown flag: " + arg);
    }
  }
  return options;
}

constexpr const char* kTopologies[] = {"omega",     "baseline", "cube",
                                       "butterfly", "benes",    "gamma"};

/// One randomized scenario: every knob of the robustness runtime drawn
/// from ranges that cover nominal load through 4x overload storms.
sim::SystemConfig random_scenario(util::Rng& rng, double measure) {
  sim::SystemConfig config;
  config.arrival_rate = rng.uniform(0.2, 1.5);
  config.warmup_time = 5.0;
  config.measure_time = measure;
  config.seed = rng();
  config.validate_invariants = true;

  if (rng.bernoulli(0.7)) {  // fault storm
    config.faults.link_mttf = rng.uniform(6.0, 60.0);
    config.faults.link_mttr = rng.uniform(0.5, 4.0);
    config.faults.seed = rng();
    config.drop_timeout = rng.uniform(10.0, 40.0);
  }
  if (rng.bernoulli(0.7)) {  // bounded queues
    config.max_queue = static_cast<std::int32_t>(rng.uniform_int(2, 16));
    config.shed_policy = rng.bernoulli(0.5) ? sim::ShedPolicy::kDropTail
                                            : sim::ShedPolicy::kOldestFirst;
  }
  if (rng.bernoulli(0.6)) {  // overload burst
    config.burst_multiplier = rng.uniform(1.5, 4.0);
    config.burst_start = rng.uniform(0.0, measure * 0.5);
    config.burst_duration = rng.uniform(5.0, measure * 0.5);
  }
  if (rng.bernoulli(0.6)) {  // degradation controller
    config.overload_on = rng.uniform(1.0, 4.0);
    config.overload_window = rng.uniform(2.0, 8.0);
    config.overload_dwell_cycles =
        static_cast<std::int32_t>(rng.uniform_int(5, 30));
  }
  return config;
}

struct Failure {
  sim::SystemConfig config;
  std::string topology;
  std::int32_t size = 8;
  std::string what;
  std::int32_t batch_window = 1;
};

/// The runtime under soak: the breaker with its differential check armed,
/// optionally inside a batching window (deadline at half the window so
/// starved requests still force drains mid-window).
std::unique_ptr<core::Scheduler> make_runtime_scheduler(
    std::int32_t window) {
  auto breaker = std::make_unique<core::CircuitBreakerScheduler>(
      core::BreakerConfig{}, /*verify=*/true);
  if (window <= 1) return breaker;
  return std::make_unique<core::BatchingScheduler>(
      std::move(breaker),
      core::BatchPolicy{window, std::max(1, window / 2)});
}

/// Runs one recorded scenario with every check armed. Returns the error
/// message if the runtime tripped, nullopt on a clean run.
std::optional<std::string> run_once(const topo::Network& net,
                                    const sim::SystemConfig& config,
                                    std::int32_t batch_window,
                                    sim::TraceRecorder& recorder) {
  try {
    const auto scheduler = make_runtime_scheduler(batch_window);
    sim::simulate_system(net, *scheduler, config, recorder);
    return std::nullopt;
  } catch (const std::exception& error) {
    return error.what();
  }
}

/// Greedy horizon shrink: repeatedly halve measure_time and try dropping
/// the warmup while the failure persists, so the saved repro trace is the
/// shortest run this shrinker can find that still trips the violation.
Failure shrink(Failure failing) {
  while (failing.config.measure_time > 2.0) {
    sim::SystemConfig candidate = failing.config;
    candidate.measure_time = failing.config.measure_time / 2.0;
    const topo::Network net =
        topo::make_named(failing.topology, failing.size);
    sim::TraceRecorder recorder;
    const auto error =
        run_once(net, candidate, failing.batch_window, recorder);
    if (!error.has_value()) break;
    failing.config = candidate;
    failing.what = *error;
  }
  if (failing.config.warmup_time > 0.0) {
    sim::SystemConfig candidate = failing.config;
    candidate.warmup_time = 0.0;
    const topo::Network net =
        topo::make_named(failing.topology, failing.size);
    sim::TraceRecorder recorder;
    const auto error =
        run_once(net, candidate, failing.batch_window, recorder);
    if (error.has_value()) {
      failing.config = candidate;
      failing.what = *error;
    }
  }
  return failing;
}

/// Re-records the (shrunk) failing run, saves its trace, then reloads the
/// file and replays it to prove the bundle reproduces the same violation.
int report_failure(const Failure& failure, const std::string& trace_dir,
                   std::int64_t scenario) {
  const topo::Network net =
      topo::make_named(failure.topology, failure.size);
  sim::TraceRecorder recorder;
  run_once(net, failure.config, failure.batch_window, recorder);
  const std::string path = trace_dir + "/soak_fail_" +
                           std::to_string(scenario) + ".rsintrace";
  recorder.trace().save_file(path);

  std::cerr << "scenario " << scenario << " FAILED: " << failure.what
            << "\n  topology " << failure.topology << " " << failure.size
            << ", batch window " << failure.batch_window
            << ", shrunk horizon " << failure.config.measure_time
            << ", trace saved to " << path << "\n";
  try {
    const sim::Trace reloaded = sim::Trace::load_file(path);
    sim::replay_system(net, reloaded);
    std::cerr << "  replay of the saved trace did NOT reproduce the "
                 "violation (completed cleanly)\n";
  } catch (const std::exception& replay_error) {
    std::cerr << "  replay reproduces: " << replay_error.what() << "\n";
  }
  return 1;
}

/// A scheduler that turns hostile mid-run: duplicates an assignment, which
/// is never realizable. Exercises the catch -> dump -> replay pipeline.
class SabotagedScheduler final : public core::Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "sabotaged"; }
  core::ScheduleResult schedule(const core::Problem& problem) override {
    core::ScheduleResult result = honest_.schedule(problem);
    if (++cycles_ > 100 && !result.assignments.empty()) {
      result.assignments.push_back(result.assignments.front());
    }
    return result;
  }

 private:
  core::GreedyScheduler honest_;
  std::int32_t cycles_ = 0;
};

/// Self-test of the failure path: the harness must catch the sabotage,
/// dump a replayable trace, and reload + replay its prefix. Returns 0 when
/// the sabotage was caught, 1 when it slipped through.
int run_sabotage(const SoakOptions& options) {
  const topo::Network net = topo::make_named("omega", 8);
  const std::string path = options.trace_dir + "/soak_sabotage.rsintrace";
  SabotagedScheduler scheduler;
  sim::SystemConfig config;
  config.arrival_rate = 0.8;
  config.warmup_time = 5.0;
  config.measure_time = options.measure;
  config.seed = options.seed;
  config.validate_invariants = true;
  config.trace_on_violation = path;
  try {
    sim::simulate_system(net, scheduler, config);
  } catch (const std::exception& error) {
    const sim::Trace trace = sim::Trace::load_file(path);
    const sim::SystemMetrics prefix = sim::replay_system(net, trace);
    std::cout << "sabotage caught: " << error.what() << "\n  repro bundle "
              << path << " (crashed at t=" << trace.crash_time << ", "
              << trace.cycles.size() << " cycles, " << prefix.tasks_arrived
              << " arrivals replayed)\n";
    return 0;
  }
  std::cerr << "sabotage NOT caught: the broken scheduler ran to "
               "completion\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const SoakOptions options = parse_args(argc, argv);
    if (options.sabotage) {
      const int status = run_sabotage(options);
      if (status != 0) return status;
    }

    util::Rng rng(options.seed);
    std::int64_t faults_seen = 0;
    std::int64_t shed_seen = 0;
    std::int64_t degraded_seen = 0;
    std::int64_t deferred_seen = 0;
    for (std::int64_t scenario = 0; scenario < options.scenarios;
         ++scenario) {
      const std::string topology = kTopologies[rng.uniform_int(
          0, static_cast<std::int64_t>(std::size(kTopologies)) - 1)];
      const std::int32_t size = rng.bernoulli(0.25) ? 16 : 8;
      const sim::SystemConfig config = random_scenario(rng, options.measure);
      // Weighted toward 1 so the classic unbatched runtime stays the most
      // soaked configuration.
      static constexpr std::int32_t kWindows[] = {1, 1, 2, 3, 4};
      const std::int32_t window =
          options.batch_window >= 1
              ? options.batch_window
              : kWindows[rng.uniform_int(
                    0, static_cast<std::int64_t>(std::size(kWindows)) - 1)];
      const topo::Network net = topo::make_named(topology, size);

      sim::TraceRecorder recorder;
      try {
        const auto scheduler = make_runtime_scheduler(window);
        const sim::SystemMetrics metrics =
            sim::simulate_system(net, *scheduler, config, recorder);
        faults_seen += metrics.faults_injected;
        shed_seen += metrics.tasks_shed;
        deferred_seen += metrics.deferred_cycles;
        if (metrics.overload_fraction > 0.0) ++degraded_seen;
      } catch (const std::exception& error) {
        Failure failure{config, topology, size, error.what(), window};
        return report_failure(shrink(failure), options.trace_dir, scenario);
      }
      if ((scenario + 1) % 50 == 0) {
        std::cout << "  " << (scenario + 1) << "/" << options.scenarios
                  << " scenarios clean\n";
      }
    }
    std::cout << "soak passed: " << options.scenarios
              << " scenarios, 0 invariant violations (" << faults_seen
              << " faults injected, " << shed_seen << " tasks shed, "
              << degraded_seen << " runs entered overload, " << deferred_seen
              << " cycles deferred by batching)\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 2;
  }
}
