// E11 — Section III-D: heterogeneous MRSIN scheduling as multicommodity
// flow. On MIN-class (restricted) topologies the LP optimum is integral
// (Evans–Jarvis), so the simplex method yields the optimal typed
// allocation; a per-type sequential scheduler serves as the combinatorial
// baseline it dominates.
//
// Reported per type count k: integrality rate of the LP optimum, average
// allocations for LP vs sequential, simplex pivots.
#include <iostream>

#include "core/hetero.hpp"
#include "sim/static_experiment.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsin;
  std::cout << "=== E11: heterogeneous scheduling — multicommodity LP vs "
               "sequential per-type ===\n\n";

  util::Table table({"types k", "instances", "LP integral", "LP alloc",
                     "sequential alloc", "LP wins", "avg pivots"});

  for (const int k : {1, 2, 3, 4}) {
    util::Rng rng(600 + static_cast<std::uint64_t>(k));
    const topo::Network net = topo::make_omega(8);
    core::HeteroLpScheduler lp;
    core::HeteroSequentialScheduler sequential;

    const int rounds = 60;
    int integral = 0;
    int lp_wins = 0;
    std::int64_t lp_total = 0;
    std::int64_t seq_total = 0;
    std::int64_t pivots = 0;
    for (int round = 0; round < rounds; ++round) {
      core::Problem problem;
      problem.network = &net;
      for (topo::ProcessorId p = 0; p < 8; ++p) {
        if (!rng.bernoulli(0.75)) continue;
        problem.requests.push_back(
            {p, 0, static_cast<std::int32_t>(rng.uniform_int(0, k - 1))});
      }
      for (topo::ResourceId r = 0; r < 8; ++r) {
        if (!rng.bernoulli(0.75)) continue;
        problem.free_resources.push_back(
            {r, 0, static_cast<std::int32_t>(rng.uniform_int(0, k - 1))});
      }
      if (problem.requests.empty() || problem.free_resources.empty()) {
        ++integral;
        continue;
      }
      const core::HeteroResult lp_result = lp.schedule_detailed(problem);
      const core::ScheduleResult seq_result = sequential.schedule(problem);
      if (lp_result.lp_integral) ++integral;
      pivots += lp_result.simplex_iterations;
      lp_total += static_cast<std::int64_t>(lp_result.schedule.allocated());
      seq_total += static_cast<std::int64_t>(seq_result.allocated());
      if (lp_result.schedule.allocated() > seq_result.allocated()) ++lp_wins;
    }
    table.add(k, rounds, std::to_string(integral) + "/" +
                             std::to_string(rounds),
              lp_total, seq_total, lp_wins, pivots / rounds);
  }
  std::cout << table
            << "\nthe LP optimum is integral on the Omega (restricted "
               "topology class) and never allocates less than the greedy "
               "per-type order\n";
  return 0;
}
