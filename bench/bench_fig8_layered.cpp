// E5 — Fig. 8: layered-network construction and reallocation on a 4x4
// MRSIN.
//
// The figure's content: three processors request, three resources are
// free, an initial two-circuit allocation blocks the third request, and the
// layered network (built by request-token propagation / Dinic's phase 1)
// exposes an augmenting path that cancels one registered link and allocates
// all three. We realize the same situation on the 4x4 indirect binary
// n-cube (where the blocking configuration exists; see DESIGN.md) and print
// every layer.
#include <algorithm>
#include <iostream>

#include "core/routing.hpp"
#include "core/transform.hpp"
#include "flow/max_flow.hpp"
#include "topo/builders.hpp"

int main() {
  using namespace rsin;
  std::cout << "=== E5 / Fig. 8: layered network on a 4x4 MRSIN ===\n\n";

  const topo::Network network = topo::make_indirect_cube(4);
  const core::Problem problem =
      core::make_problem(network, {0, 1, 3}, {0, 2, 3});
  core::TransformResult transformed = core::transformation1(problem);

  // Initial allocation: p1 -> r1, p4 -> r4 (blocks p2 from r3).
  const auto install = [&](topo::ProcessorId p, topo::ResourceId r) {
    const auto paths = core::enumerate_free_paths(network, p, r);
    for (std::size_t a = 0; a < transformed.net.arc_count(); ++a) {
      const auto arc = static_cast<flow::ArcId>(a);
      if (transformed.arc_processor[a] == p ||
          transformed.arc_resource[a] == r ||
          (transformed.arc_link[a] != topo::kInvalidId &&
           std::find(paths.front().links.begin(), paths.front().links.end(),
                     transformed.arc_link[a]) != paths.front().links.end())) {
        transformed.net.set_flow(arc, 1);
      }
    }
  };
  install(0, 0);
  install(3, 3);
  std::cout << "initial mapping {(p1,r1),(p4,r4)}; p2 has no free path to "
               "r3 (verified by path enumeration)\n\n";

  flow::DinicTrace trace;
  const flow::MaxFlowResult result =
      flow::max_flow_dinic(transformed.net, &trace);

  const flow::LayeredNetwork& layered = trace.phases.front();
  std::cout << "layered network of the first iteration ("
            << layered.layers.size() << " layers):\n";
  for (std::size_t l = 0; l < layered.layers.size(); ++l) {
    std::cout << "  V" << l << ": ";
    for (const flow::NodeId v : layered.layers[l]) {
      std::cout << transformed.net.label(v) << ' ';
    }
    std::cout << '\n';
  }
  int backward_links = 0;
  for (const auto e : layered.useful_links) {
    if (!flow::ResidualGraph::is_forward(e)) ++backward_links;
  }
  std::cout << "useful links: " << layered.useful_links.size() << " ("
            << backward_links
            << " backward = flow-cancelling, as in Fig. 8(b))\n";

  std::cout << "\naugmented " << result.value << " unit; final flow value "
            << transformed.net.flow_value() << " (paper: all 3 allocated)\n";
  const core::ScheduleResult schedule =
      core::extract_schedule(problem, transformed);
  for (const core::Assignment& a : schedule.assignments) {
    std::cout << "  p" << a.request.processor + 1 << " -> r"
              << a.resource.resource + 1 << '\n';
  }
  return 0;
}
