// E20 — overload storms and the robustness runtime (heavy-traffic control
// policies for resource-sharing networks; Budhiraja & Johnson, Shah & Shin).
//
// Part 1: arrival-burst sweep. A mid-run burst multiplies the arrival rate
// for 80 time units while the bounded queues shed excess work and the
// hysteretic overload controller steps the scheduler down the degradation
// ladder (optimal -> relaxed -> greedy). The table shows the shed/overload
// cost growing with burst intensity — and the final-level column shows the
// controller recovering to the pre-burst level after every storm.
//
// Part 2: shed-policy comparison under a simultaneous fault storm and
// sustained 1.5x overload: unbounded queues back up without bound while
// either bounded policy keeps the backlog finite; oldest-first trades
// sheds for drops by evicting stale work instead of rejecting fresh work.
#include <iostream>

#include "core/scheduler.hpp"
#include "sim/system_sim.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

namespace {

using namespace rsin;

sim::SystemConfig storm_config() {
  sim::SystemConfig config;
  config.arrival_rate = 0.6;
  config.warmup_time = 50.0;
  config.measure_time = 500.0;
  config.seed = 20;
  config.max_queue = 16;
  config.overload_on = 2.0;
  config.overload_window = 5.0;
  config.overload_dwell_cycles = 20;
  return config;
}

void burst_sweep() {
  std::cout << "=== E20: arrival bursts vs the degradation controller "
               "(omega 8, circuit-breaker scheduler, max_queue 16) ===\n\n";
  const topo::Network net = topo::make_named("omega", 8);
  util::Table table({"burst x", "utilization", "mean queue", "shed",
                     "dropped", "overload %", "transitions", "final level"});
  for (const double burst : {1.0, 1.5, 2.0, 3.0, 4.0}) {
    core::CircuitBreakerScheduler scheduler;
    sim::SystemConfig config = storm_config();
    config.burst_multiplier = burst;
    config.burst_start = 150.0;
    config.burst_duration = 80.0;
    config.drop_timeout = 60.0;
    const sim::SystemMetrics metrics =
        sim::simulate_system(net, scheduler, config);
    table.add(util::fixed(burst, 1),
              util::fixed(metrics.resource_utilization, 3),
              util::fixed(metrics.mean_queue_length, 2), metrics.tasks_shed,
              metrics.tasks_dropped,
              util::pct(metrics.overload_fraction),
              metrics.degradation_transitions,
              sim::to_string(metrics.final_level));
  }
  std::cout << table
            << "\nheavier bursts shed more work and spend more of the "
               "horizon degraded, but every run ends back at the optimal "
               "level: the hysteretic controller recovers once the burst "
               "passes and the bounded queues keep the backlog finite\n";
}

void shed_policy_sweep() {
  std::cout << "\n=== E20b: shed policy under a fault storm + sustained "
               "overload (benes 8, MTTF 12, arrival 1.5x capacity) ===\n\n";
  const topo::Network net = topo::make_named("benes", 8);
  util::Table table({"queues", "mean queue", "shed", "dropped", "retries",
                     "availability", "utilization", "completed"});
  struct Row {
    const char* label;
    std::int32_t max_queue;
    sim::ShedPolicy policy;
  };
  const Row rows[] = {
      {"unbounded", 0, sim::ShedPolicy::kDropTail},
      {"8 drop-tail", 8, sim::ShedPolicy::kDropTail},
      {"8 oldest-first", 8, sim::ShedPolicy::kOldestFirst},
  };
  for (const Row& row : rows) {
    core::CircuitBreakerScheduler scheduler;
    sim::SystemConfig config = storm_config();
    config.arrival_rate = 1.5;
    config.measure_time = 400.0;
    config.max_queue = row.max_queue;
    config.shed_policy = row.policy;
    config.faults.link_mttf = 12.0;
    config.faults.link_mttr = 2.0;
    config.drop_timeout = 30.0;
    const sim::SystemMetrics metrics =
        sim::simulate_system(net, scheduler, config);
    table.add(row.label, util::fixed(metrics.mean_queue_length, 2),
              metrics.tasks_shed, metrics.tasks_dropped, metrics.retries,
              util::fixed(metrics.availability, 4),
              util::fixed(metrics.resource_utilization, 3),
              metrics.tasks_completed);
  }
  std::cout << table
            << "\nunbounded queues absorb the overload as unbounded backlog "
               "(every admitted task eventually ages out or waits forever); "
               "admission control converts that backlog into explicit sheds "
               "while keeping utilization — oldest-first evicts stale work "
               "so what it keeps is young enough to finish\n";
}

}  // namespace

int main() {
  burst_sweep();
  shed_policy_sweep();
  return 0;
}
