// E10 — Section II: "If the network is not completely free, then there
// will be fewer paths available ... a heuristic routing algorithm may have
// poor performance. An optimal scheduling algorithm will be able to better
// utilize these paths, and result in a low blocking probability (although
// higher than that of the case when the network is completely free)."
//
// We sweep the number of pre-established background circuits on an 8x8
// cube MRSIN and measure blocking for each discipline.
#include <iostream>

#include "core/scheduler.hpp"
#include "sim/static_experiment.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsin;
  std::cout << "=== E10: blocking vs background circuit occupancy (8x8 "
               "cube) ===\n\n";

  util::Table table({"background circuits", "optimal %", "first-fit %",
                     "address-mapped %"});

  for (const std::int32_t circuits : {0, 1, 2, 3}) {
    const topo::Network net = topo::make_indirect_cube(8);
    sim::StaticExperimentConfig config;
    config.trials = 2000;
    config.request_probability = 0.5;
    config.free_probability = 0.5;
    config.background_circuits = circuits;
    config.seed = 21;

    core::MaxFlowScheduler optimal;
    core::GreedyScheduler greedy;
    core::RandomScheduler address_mapped{util::Rng(23)};
    const auto opt = sim::run_static_experiment(net, optimal, config);
    const auto fit = sim::run_static_experiment(net, greedy, config);
    const auto adr = sim::run_static_experiment(net, address_mapped, config);
    table.add(circuits, util::pct(opt.blocking_probability()),
              util::pct(fit.blocking_probability()),
              util::pct(adr.blocking_probability()));
  }
  std::cout << table
            << "\nblocking rises with occupancy for every discipline, but "
               "the optimal scheduler degrades most gracefully — the "
               "paper's Section II prediction\n";
  return 0;
}
