// Crash-injection soak harness for the rsind service (DESIGN.md §10).
//
// For each randomized scenario the harness builds a deterministic command
// script (tenants, requests, scheduling cycles, fault injections, batch /
// degradation knob turns), then runs it twice against real rsind daemons
// (fork/exec of the installed binary):
//
//   golden:  one uninterrupted daemon, the full script, SIGTERM at the end
//            (must exit 0 — the graceful-drain contract), final per-tenant
//            stats lines captured.
//   killed:  the same script, but at randomized points the daemon is
//            SIGKILLed and restarted with --recover. Two kill flavors per
//            point: at a command boundary (resume where we left off) and
//            after an acknowledged command (the command is then re-sent,
//            exercising the idempotent-id duplicate path across a
//            restart). The final stats must equal the golden run's
//            *bitwise* — every double, counter, and state hash.
//
// Any mismatch, failed recovery, or non-zero drain exit fails the harness
// (exit 1). Defaults: 20 scenarios x 3 kill points = 60 randomized kills,
// the crash-recovery gate of PR 6.
//
// Usage:
//   soak_kill [--scenarios=N] [--kills=K] [--seed=S] [--dir=DIR]
//
//   --scenarios=N  randomized scenarios (default 20)
//   --kills=K      kill points per scenario (default 3)
//   --seed=S       master seed (default 2026)
//   --dir=DIR      scratch directory (default /tmp, a subdir is created)
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "svc/client.hpp"
#include "svc/journal.hpp"
#include "util/rng.hpp"

#ifndef RSIND_PATH
#error "RSIND_PATH must be defined (path to the rsind binary)"
#endif

namespace {

using namespace rsin;

struct Options {
  std::int64_t scenarios = 20;
  std::int64_t kills = 3;
  std::uint64_t seed = 2026;
  std::string dir = "/tmp";
};

Options parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--scenarios") {
      options.scenarios = std::stoll(value);
    } else if (key == "--kills") {
      options.kills = std::stoll(value);
    } else if (key == "--seed") {
      options.seed = std::stoull(value);
    } else if (key == "--dir") {
      options.dir = value;
    } else {
      std::cerr << "usage: soak_kill [--scenarios=N] [--kills=K] [--seed=S]"
                   " [--dir=DIR]\n";
      std::exit(2);
    }
  }
  return options;
}

/// One daemon under test: fork/exec of RSIND_PATH on a private socket+dir.
class Daemon {
 public:
  Daemon(std::string socket_path, std::string dir)
      : socket_path_(std::move(socket_path)), dir_(std::move(dir)) {}
  ~Daemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  void start(bool recover) {
    std::cout.flush();  // fork() would duplicate any buffered output.
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: quiet stdout (the harness output is the report).
      ::freopen("/dev/null", "w", stdout);
      std::vector<const char*> argv = {RSIND_PATH,        "--socket",
                                       socket_path_.c_str(), "--dir",
                                       dir_.c_str()};
      if (recover) argv.push_back("--recover");
      argv.push_back(nullptr);
      ::execv(RSIND_PATH, const_cast<char* const*>(argv.data()));
      ::_exit(127);
    }
    if (pid < 0) {
      std::cerr << "fork failed\n";
      std::exit(1);
    }
    pid_ = pid;
  }

  /// SIGKILL — the crash under test. Reaps the corpse.
  void kill_hard() {
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      std::cerr << "FAIL: daemon did not die from SIGKILL (status=" << status
                << ")\n";
      std::exit(1);
    }
  }

  /// SIGTERM — the graceful drain. Must exit 0.
  bool drain() {
    ::kill(pid_, SIGTERM);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }

  [[nodiscard]] const std::string& socket_path() const {
    return socket_path_;
  }
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string socket_path_;
  std::string dir_;
  pid_t pid_ = -1;
};

svc::Client make_client(const Daemon& daemon) {
  svc::ClientOptions options;
  options.socket_path = daemon.socket_path();
  options.timeout_ms = 5000;
  options.retries = 12;   // Daemon restarts ride inside the retry loop.
  options.backoff_ms = 20;
  return svc::Client(options);
}

/// A deterministic command script plus where its stats are read.
struct Scenario {
  std::vector<std::string> commands;
  std::vector<std::string> tenants;
};

Scenario make_scenario(std::uint64_t seed) {
  util::Rng rng(seed);
  Scenario scenario;

  static const char* kTopologies[] = {"omega", "baseline", "cube"};
  static const char* kSchedulers[] = {"breaker", "warm", "dinic", "greedy"};
  const std::int64_t tenant_count = rng.uniform_int(1, 2);
  for (std::int64_t t = 0; t < tenant_count; ++t) {
    const std::string name = "t" + std::to_string(t);
    const std::string topology =
        kTopologies[rng.uniform_int(0, 2)];
    const std::int32_t n = rng.uniform_int(0, 1) == 0 ? 8 : 16;
    scenario.tenants.push_back(name);
    scenario.commands.push_back(
        "tenant name=" + name + " topology=" + topology +
        " n=" + std::to_string(n) +
        " seed=" + std::to_string(rng.uniform_int(1, 1 << 20)) +
        " scheduler=" + kSchedulers[rng.uniform_int(0, 3)] +
        " max-pending=" + std::to_string(rng.uniform_int(4, 64)));
  }

  const std::int64_t body = rng.uniform_int(80, 140);
  std::uint64_t next_id = 1;
  for (std::int64_t i = 0; i < body; ++i) {
    const std::string& tenant =
        scenario.tenants[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(scenario.tenants.size()) - 1))];
    const std::int64_t roll = rng.uniform_int(0, 99);
    if (roll < 55) {
      scenario.commands.push_back(
          "req tenant=" + tenant + " id=" + std::to_string(next_id++) +
          " proc=" + std::to_string(rng.uniform_int(0, 7)) +
          " prio=" + std::to_string(rng.uniform_int(0, 3)));
    } else if (roll < 85) {
      scenario.commands.push_back("cycle tenant=" + tenant +
                                  " id=" + std::to_string(next_id++));
    } else if (roll < 90) {
      scenario.commands.push_back("inject-fault tenant=" + tenant +
                                  " link=" +
                                  std::to_string(rng.uniform_int(0, 7)));
    } else if (roll < 95) {
      scenario.commands.push_back("repair tenant=" + tenant + " link=" +
                                  std::to_string(rng.uniform_int(0, 7)));
    } else if (roll < 98) {
      scenario.commands.push_back(
          "set tenant=" + tenant +
          " batch-window=" + std::to_string(rng.uniform_int(1, 3)));
    } else {
      scenario.commands.push_back(
          "set tenant=" + tenant +
          " level=" + std::to_string(rng.uniform_int(0, 2)));
    }
  }
  // Settle: everything in flight retires, queues drain where they can.
  for (const std::string& tenant : scenario.tenants) {
    scenario.commands.push_back("set tenant=" + tenant + " batch-window=1");
    for (int i = 0; i < 25; ++i) {
      scenario.commands.push_back("cycle tenant=" + tenant +
                                  " id=" + std::to_string(next_id++));
    }
  }
  return scenario;
}

std::vector<std::string> read_stats(svc::Client& client,
                                    const Scenario& scenario) {
  std::vector<std::string> stats;
  for (const std::string& tenant : scenario.tenants) {
    const svc::Response reply = client.request("stats tenant=" + tenant);
    if (!reply.ok) {
      std::cerr << "FAIL: stats refused: " << reply.body << '\n';
      std::exit(1);
    }
    stats.push_back(reply.body);
  }
  return stats;
}

void check_journal_complete(const std::string& dir) {
  const svc::Journal::ScanResult scan =
      svc::Journal::scan(dir + "/journal.bin");
  if (scan.truncated) {
    std::cerr << "FAIL: post-drain journal has a torn tail at offset "
              << scan.damage_offset << ": " << scan.damage << '\n';
    std::exit(1);
  }
}

void reset_dir(const std::string& dir) {
  const std::string command = "rm -rf '" + dir + "' && mkdir -p '" + dir +
                              "'";
  if (std::system(command.c_str()) != 0) {
    std::cerr << "FAIL: cannot reset " << dir << '\n';
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);
  const std::string base =
      options.dir + "/soak_kill." + std::to_string(::getpid());
  util::Rng master(options.seed);
  std::int64_t total_kills = 0;

  for (std::int64_t s = 0; s < options.scenarios; ++s) {
    const std::uint64_t scenario_seed = master();
    const Scenario scenario = make_scenario(scenario_seed);
    const auto total =
        static_cast<std::int64_t>(scenario.commands.size());

    // --- golden: uninterrupted run --------------------------------------
    const std::string golden_dir = base + "/golden";
    reset_dir(golden_dir);
    std::vector<std::string> golden_stats;
    {
      Daemon daemon(golden_dir + "/rsind.sock", golden_dir);
      daemon.start(/*recover=*/false);
      svc::Client client = make_client(daemon);
      for (const std::string& command : scenario.commands) {
        const svc::Response reply = client.request(command);
        if (!reply.ok) {
          std::cerr << "FAIL: golden run refused \"" << command
                    << "\": " << reply.body << '\n';
          return 1;
        }
      }
      golden_stats = read_stats(client, scenario);
      if (!daemon.drain()) {
        std::cerr << "FAIL: golden drain did not exit 0 (scenario " << s
                  << ")\n";
        return 1;
      }
      check_journal_complete(golden_dir);
    }

    // --- killed: same script, SIGKILLs + recovery -----------------------
    util::Rng chaos(scenario_seed ^ 0x9e3779b97f4a7c15ULL);
    std::vector<std::int64_t> kill_points;
    while (static_cast<std::int64_t>(kill_points.size()) <
           std::min(options.kills, total - 1)) {
      const std::int64_t point = chaos.uniform_int(1, total - 1);
      if (std::find(kill_points.begin(), kill_points.end(), point) ==
          kill_points.end()) {
        kill_points.push_back(point);
      }
    }
    std::sort(kill_points.begin(), kill_points.end());

    const std::string killed_dir = base + "/killed";
    reset_dir(killed_dir);
    Daemon daemon(killed_dir + "/rsind.sock", killed_dir);
    daemon.start(/*recover=*/false);
    svc::Client client = make_client(daemon);
    std::size_t next_kill = 0;
    for (std::int64_t i = 0; i < total; ++i) {
      const bool kill_here = next_kill < kill_points.size() &&
                             kill_points[next_kill] == i;
      // `tenant` creation is the one command without an idempotent id, so
      // the resend flavor would be refused ("already exists") — boundary
      // kills only for those.
      const bool resendable =
          scenario.commands[i].rfind("tenant ", 0) != 0;
      const bool after_ack =
          kill_here && resendable && chaos.uniform_int(0, 1) == 1;
      if (kill_here && !after_ack) {
        // Boundary kill: crash before this command is ever sent.
        daemon.kill_hard();
        daemon.start(/*recover=*/true);
        ++total_kills;
      }
      const svc::Response reply = client.request(scenario.commands[i]);
      if (!reply.ok) {
        std::cerr << "FAIL: killed run refused \"" << scenario.commands[i]
                  << "\": " << reply.body << '\n';
        return 1;
      }
      if (kill_here && after_ack) {
        // Post-ack kill: the command is journaled (group commit ran before
        // the reply); the restart must answer the re-send as a duplicate /
        // no-op, not double-execute it.
        daemon.kill_hard();
        daemon.start(/*recover=*/true);
        ++total_kills;
        const svc::Response again = client.request(scenario.commands[i]);
        if (!again.ok) {
          std::cerr << "FAIL: re-send after recovery refused \""
                    << scenario.commands[i] << "\": " << again.body << '\n';
          return 1;
        }
      }
      if (kill_here) ++next_kill;
    }
    const std::vector<std::string> killed_stats =
        read_stats(client, scenario);
    if (!daemon.drain()) {
      std::cerr << "FAIL: killed-run drain did not exit 0 (scenario " << s
                << ")\n";
      return 1;
    }
    check_journal_complete(killed_dir);

    if (killed_stats != golden_stats) {
      std::cerr << "FAIL: scenario " << s << " (seed " << scenario_seed
                << ") diverged after recovery:\n";
      for (std::size_t t = 0; t < golden_stats.size(); ++t) {
        std::cerr << "  golden: " << golden_stats[t] << '\n'
                  << "  killed: " << killed_stats[t] << '\n';
      }
      return 1;
    }
    std::cout << "scenario " << s << ": " << total << " commands, "
              << scenario.tenants.size() << " tenant(s), bitwise match\n";
  }

  (void)std::system(("rm -rf '" + base + "'").c_str());
  std::cout << "soak_kill: " << options.scenarios << " scenarios, "
            << total_kills << " SIGKILL+recover points, all recoveries "
            << "bitwise-identical, all drains exit 0\n";
  return 0;
}
