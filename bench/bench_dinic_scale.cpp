// E23: million-node Dinic scaling sweep for the compact bit-parallel hot
// path (DESIGN.md §11).
//
// For each sweep point (Omega fabrics up to 2^17 processors — ~1.4M flow
// nodes after Transformation 1 — plus a three-stage Clos), the bench builds
// the persistent skeleton once and then drives full scheduling cycles:
// PersistentTransform::update overwrites the cycle's capacities and
// warm_max_flow_dinic repairs + re-augments the retained flow. Three
// verdicts are gated:
//  1. differential — at the small sweep points every cycle's warm value is
//     checked against a cold transformation1 + scalar Dinic solve;
//  2. zero-alloc — once warm, a probed block of cycles must perform zero
//     heap allocations (epoch stamps, arena scratch, and bit-set frontiers
//     replace every per-cycle fill/alloc);
//  3. throughput — the largest Omega point must sustain the cycles/sec
//     floor below; a regression to any O(n)-per-phase behaviour at 10^6
//     nodes misses the floor by orders of magnitude.
// Results land in BENCH_dinic_scale.json (obs::write_json shape) so CI can
// archive the sweep next to the table output.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "core/transform.hpp"
#include "flow/max_flow.hpp"
#include "flow/schedule_context.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

// --- heap probe -----------------------------------------------------------
// Counts every operator-new in the process while enabled. Single-threaded
// bench, so plain counters are fine.
namespace {
std::size_t g_allocation_count = 0;
bool g_count_allocations = false;
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocations) ++g_allocation_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (g_count_allocations) ++g_allocation_count;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace rsin;

/// Floor for the gated verdict: warm scheduling cycles per second on the
/// largest Omega point (~1.4M flow nodes, ~2.6M arcs). Measured ~1.2-1.3
/// cyc/s on the dev class of machine; the floor leaves >2x headroom for
/// slower CI hosts while still catching asymptotic regressions — the old
/// O(degree^2) hub rescan alone pushes a cycle past 10s here.
constexpr double kCyclesPerSecFloor = 0.5;

struct SweepPoint {
  std::string name;
  topo::Network fabric;
  int cycles;         ///< Timed warm cycles.
  bool differential;  ///< Check every warm value against a cold solve.
  bool gated;         ///< Apply the cycles/sec floor here.
};

/// One scheduling cycle: the request/free snapshot plus the link faults or
/// repairs that precede it.
struct Cycle {
  core::Problem problem;
  std::vector<topo::LinkId> link_toggles;
};

struct PointResult {
  std::size_t flow_nodes = 0;
  std::size_t flow_arcs = 0;
  double cold_solve_seconds = 0.0;
  double warm_cycles_per_sec = 0.0;
  std::size_t steady_allocations = 0;
  std::int64_t checked_cycles = 0;
};

/// Pre-generates the cycle stream so problem construction (which allocates)
/// stays outside the probed and timed regions. The stream models a DES
/// scheduling loop: 50% of processors requesting against 70% free
/// resources (demand under supply, as in a running system that keeps
/// admitting work), then per cycle each processor or resource flips
/// between busy and idle with 5% probability (arrivals and releases) and
/// the occasional fabric link fails or gets repaired — the
/// incremental-mutation regime the warm repair path exists for. A fully
/// saturated balanced load (60/60) is pessimal for *any* incremental
/// max-flow scheme: with zero slack the repaired units need long zig-zag
/// augmenting paths and phase counts triple.
std::vector<Cycle> make_cycles(const topo::Network& fabric, int count,
                               std::uint64_t seed) {
  util::Rng rng(seed);
  constexpr double kChurn = 0.05;
  std::vector<char> requesting(
      static_cast<std::size_t>(fabric.processor_count()));
  std::vector<char> available(
      static_cast<std::size_t>(fabric.resource_count()));
  for (auto& r : requesting) r = rng.bernoulli(0.5) ? 1 : 0;
  for (auto& a : available) a = rng.bernoulli(0.7) ? 1 : 0;

  std::vector<Cycle> cycles;
  cycles.reserve(static_cast<std::size_t>(count));
  for (int c = 0; c < count; ++c) {
    Cycle cycle;
    if (c > 0) {
      for (auto& r : requesting) {
        if (rng.bernoulli(kChurn)) r = 1 - r;
      }
      for (auto& a : available) {
        if (rng.bernoulli(kChurn)) a = 1 - a;
      }
      const auto toggles = rng.uniform_int(0, 2);
      for (std::int64_t i = 0; i < toggles; ++i) {
        cycle.link_toggles.push_back(static_cast<topo::LinkId>(
            rng.uniform_int(0, fabric.link_count() - 1)));
      }
    }
    std::vector<topo::ProcessorId> request_ids;
    for (topo::ProcessorId p = 0; p < fabric.processor_count(); ++p) {
      if (requesting[static_cast<std::size_t>(p)]) request_ids.push_back(p);
    }
    std::vector<topo::ResourceId> resource_ids;
    for (topo::ResourceId r = 0; r < fabric.resource_count(); ++r) {
      if (available[static_cast<std::size_t>(r)]) resource_ids.push_back(r);
    }
    cycle.problem = core::make_problem(fabric, std::move(request_ids),
                                       std::move(resource_ids));
    cycles.push_back(std::move(cycle));
  }
  return cycles;
}

/// Applies a cycle's link faults/repairs. Outside the zero-alloc probe
/// window: fail_link returns the (heap-allocated) list of released
/// circuits, which the flow layer doesn't use.
void apply_toggles(topo::Network& fabric, const Cycle& cycle) {
  for (const topo::LinkId link : cycle.link_toggles) {
    if (fabric.link_failed(link)) {
      fabric.repair_link(link);
    } else {
      fabric.fail_link(link);
    }
  }
}

PointResult run_point(SweepPoint& point) {
  PointResult result;
  core::PersistentTransform persistent;
  persistent.build(point.fabric);
  flow::FlowNetwork& net = persistent.result().net;
  result.flow_nodes = net.node_count();
  result.flow_arcs = net.arc_count();

  const std::vector<Cycle> cycles =
      make_cycles(point.fabric, point.cycles, 23000 + result.flow_nodes);
  flow::ScheduleContext ctx;

  // Cycle 0 doubles as the cold-solve datapoint: the context rebuilds the
  // residual from scratch (allocation-heavy by design, once).
  persistent.update(cycles[0].problem);
  util::Stopwatch cold_watch;
  flow::warm_max_flow_dinic(net, ctx);
  result.cold_solve_seconds = cold_watch.seconds();

  // Warm up the remaining grow-only buffers (arena chunks, path vector).
  for (std::size_t c = 1; c < std::min<std::size_t>(cycles.size(), 3); ++c) {
    apply_toggles(point.fabric, cycles[c]);
    persistent.update(cycles[c].problem);
    flow::warm_max_flow_dinic(net, ctx);
  }

  // Zero-alloc probe: a steady-state warm cycle — capacity overwrite plus
  // residual repair plus re-augmentation — must not touch the heap. Link
  // toggles happen between the probed windows (fail_link itself allocates
  // its released-circuit list; the flow hot path is what is under test).
  for (std::size_t c = 3; c < cycles.size(); ++c) {
    apply_toggles(point.fabric, cycles[c]);
    g_allocation_count = 0;
    g_count_allocations = true;
    persistent.update(cycles[c].problem);
    flow::warm_max_flow_dinic(net, ctx);
    g_count_allocations = false;
    result.steady_allocations += g_allocation_count;
  }

  // Timed phase: replay the full stream (link states evolve further; the
  // warm path repairs whatever each cycle changed).
  util::Stopwatch watch;
  for (const Cycle& cycle : cycles) {
    apply_toggles(point.fabric, cycle);
    persistent.update(cycle.problem);
    flow::warm_max_flow_dinic(net, ctx);
  }
  result.warm_cycles_per_sec =
      static_cast<double>(cycles.size()) / watch.seconds();

  if (point.differential) {
    for (const Cycle& cycle : cycles) {
      apply_toggles(point.fabric, cycle);
      persistent.update(cycle.problem);
      const flow::Capacity warm = flow::warm_max_flow_dinic(net, ctx).value;
      core::TransformResult cold = core::transformation1(cycle.problem);
      const flow::Capacity reference = flow::max_flow_dinic(cold.net).value;
      RSIN_ENSURE(warm == reference,
                  "warm bit-parallel value diverged from the cold scalar "
                  "solve at point " +
                      point.name);
      ++result.checked_cycles;
    }
  }
  return result;
}

}  // namespace

int main() {
  std::cout << "=== E23: bit-parallel Dinic at scale (warm scheduling "
               "cycles, 50% demand / 70% supply, 5% churn) ===\n\n";
  std::vector<SweepPoint> sweep;
  sweep.push_back({"omega-1k", topo::make_omega(1 << 10), 200, true, false});
  sweep.push_back({"omega-8k", topo::make_omega(1 << 13), 60, true, false});
  sweep.push_back({"omega-32k", topo::make_omega(1 << 15), 24, false, false});
  sweep.push_back({"omega-131k", topo::make_omega(1 << 17), 12, false, true});
  sweep.push_back({"clos-16x31x4096", topo::make_clos(16, 31, 4096), 20,
                   false, false});

  util::Table table({"point", "flow nodes", "flow arcs", "cold solve s",
                     "warm cyc/s", "allocs/cyc steady", "diff cycles"});
  obs::Registry out;
  bool zero_alloc = true;
  double gated_rate = 0.0;
  std::size_t max_nodes = 0;
  for (SweepPoint& point : sweep) {
    const PointResult r = run_point(point);
    zero_alloc = zero_alloc && r.steady_allocations == 0;
    if (point.gated) gated_rate = r.warm_cycles_per_sec;
    max_nodes = std::max(max_nodes, r.flow_nodes);
    table.add(point.name, r.flow_nodes, r.flow_arcs,
              util::fixed(r.cold_solve_seconds, 3),
              util::fixed(r.warm_cycles_per_sec, 1),
              r.steady_allocations,
              point.differential ? std::to_string(r.checked_cycles) : "-");
    const std::string prefix = "bench.dinic_scale." + point.name;
    out.gauge(prefix + ".flow_nodes")
        .set(static_cast<double>(r.flow_nodes));
    out.gauge(prefix + ".flow_arcs").set(static_cast<double>(r.flow_arcs));
    out.gauge(prefix + ".cold_solve_seconds").set(r.cold_solve_seconds);
    out.gauge(prefix + ".warm_cycles_per_sec").set(r.warm_cycles_per_sec);
    out.gauge(prefix + ".steady_allocations")
        .set(static_cast<double>(r.steady_allocations));
  }
  std::cout << table << "\n";

  const bool floor_pass = gated_rate >= kCyclesPerSecFloor;
  const bool pass = floor_pass && zero_alloc;
  std::cout << "largest sweep point: " << max_nodes << " flow nodes\n"
            << "differential cycles all matched the cold scalar solver\n"
            << "steady-state warm cycles allocation-free: "
            << (zero_alloc ? "PASS" : "FAIL") << "\n"
            << "acceptance (>= " << util::fixed(kCyclesPerSecFloor, 1)
            << " warm cycles/sec at 10^6-node omega): "
            << (floor_pass ? "PASS" : "FAIL") << " ("
            << util::fixed(gated_rate, 1) << " cyc/s)\n";

  out.gauge("bench.dinic_scale.floor_cycles_per_sec")
      .set(kCyclesPerSecFloor);
  out.gauge("bench.dinic_scale.gated_cycles_per_sec").set(gated_rate);
  out.gauge("bench.dinic_scale.zero_alloc_pass").set(zero_alloc ? 1.0 : 0.0);
  out.gauge("bench.dinic_scale.pass").set(pass ? 1.0 : 0.0);
  std::ofstream json_out("BENCH_dinic_scale.json");
  obs::write_json(out.snapshot(), json_out);
  std::cout << "results written to BENCH_dinic_scale.json\n";
  return pass ? 0 : 1;
}
