// E19 — priority service differentiation in the dynamic system.
//
// Section III-C's priorities exist to serve urgent requests sooner. This
// experiment puts the disciplines into the closed-loop system simulation at
// near-saturating load (where scheduling choices matter: resources are
// scarce most cycles) and reports the mean circuit-establishment wait per
// priority level:
//   * max-flow — priority-blind: waits are flat across levels;
//   * min-cost (paper T4) — differentiation depends on solver tie-breaking
//     (cf. the E18 ablation);
//   * min-cost (priority-weighted) — urgent tasks wait measurably less.
// At heavy overload the effect washes out — each processor's local queue is
// FIFO, so cross-processor priorities only steer head-of-line tasks — which
// the last row demonstrates.
#include <iostream>

#include "core/scheduler.hpp"
#include "sim/system_sim.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

namespace {
const rsin::topo::Network& net_for() {
  static const rsin::topo::Network net = rsin::topo::make_omega(8);
  return net;
}
}  // namespace

int main() {
  using namespace rsin;
  std::cout << "=== E19: per-priority wait times in the dynamic system "
               "(8x8 Omega, 4 levels) ===\n\n";

  util::Table table({"arrival rate", "scheduler", "wait p=1", "wait p=2",
                     "wait p=3", "wait p=4", "utilization"});

  for (const double rate : {0.5, 0.8, 1.4}) {
    sim::SystemConfig config;
    config.arrival_rate = rate;
    config.transmission_time = 0.05;
    config.mean_service_time = 1.0;
    config.cycle_interval = 0.05;
    config.warmup_time = 100.0;
    config.measure_time = 800.0;
    config.priority_levels = 4;
    config.seed = 3;

    core::MaxFlowScheduler blind;
    core::MinCostScheduler paper_mode;
    core::MinCostScheduler weighted(flow::MinCostFlowAlgorithm::kSsp,
                                    core::BypassCostMode::kPriorityWeighted);
    for (core::Scheduler* scheduler :
         {static_cast<core::Scheduler*>(&blind),
          static_cast<core::Scheduler*>(&paper_mode),
          static_cast<core::Scheduler*>(&weighted)}) {
      const sim::SystemMetrics metrics =
          sim::simulate_system(net_for(), *scheduler, config);
      std::vector<std::string> row{util::fixed(rate, 1), scheduler->name()};
      for (std::int32_t p = 1; p <= 4; ++p) {
        const auto it = metrics.mean_wait_by_priority.find(p);
        row.push_back(it == metrics.mean_wait_by_priority.end()
                          ? "-"
                          : util::fixed(it->second, 3));
      }
      row.push_back(util::fixed(metrics.resource_utilization, 3));
      table.add_row(row);
    }
  }
  std::cout << table
            << "\nnear saturation the priority-weighted discipline serves "
               "urgent tasks ~2x sooner;\nthe priority-blind max-flow "
               "scheduler is flat; at overload local FIFO queues dominate\n";
  return 0;
}
