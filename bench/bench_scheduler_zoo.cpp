// E24: scheduler-zoo optimality gap under identical recorded workloads.
//
// For each load level the harness records one trace (arrivals + faults) on
// an omega-16 fabric, then replays that *same* offered load through every
// zoo scheduler and the optimal Dinic solve via sim::simulate_workload —
// common random numbers end to end: identical arrival stream, and each
// task's service time is a pure function of (seed, arrival id), so the only
// thing that varies between rows is the scheduling discipline. Emitted per
// load level: granted circuits, throughput (tasks completed), mean and p99
// response time, and the optimality loss 1 - granted/granted_optimal.
//
// Gate (CI-enforced): the randomized maximal matching must grant at least
// half of what the optimal flow solve grants at every load level — the
// classic maximal-vs-maximum matching bound, which is what qualifies it as
// the degradation ladder's intermediate rung. Results land in
// BENCH_scheduler_zoo.json (obs::write_json shape) for the CI artifact.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "core/zoo.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/system_sim.hpp"
#include "sim/trace.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

namespace {

using namespace rsin;

/// Per-resource-class arrival rates swept from light load to saturation.
const std::vector<double> kLoadLevels = {0.3, 0.6, 1.0, 1.5};

/// Zoo rows replayed at every load level; "dinic" is the optimal baseline.
const std::vector<std::string> kSchedulers = {
    "dinic", "randomized-match", "threshold", "greedy-local", "greedy"};

sim::SystemConfig load_config(double arrival_rate) {
  sim::SystemConfig config;
  config.arrival_rate = arrival_rate;
  config.warmup_time = 20.0;
  config.measure_time = 250.0;
  config.seed = 7;
  config.max_queue = 64;  // keeps saturation runs bounded for every row
  return config;
}

struct Row {
  std::string scheduler;
  std::int64_t granted = 0;
  std::int64_t completed = 0;
  double mean_response = 0.0;
  double p99_response = 0.0;
  double loss = 0.0;  ///< 1 - granted / granted_optimal.
};

}  // namespace

int main() {
  std::cout << "=== E24: scheduler zoo vs optimal on identical recorded "
               "workloads (omega-16) ===\n\n";
  const topo::Network net = topo::make_named("omega", 16);
  util::Table table({"load", "scheduler", "granted", "completed",
                     "mean resp", "p99 resp", "opt loss"});
  obs::Registry out;
  bool gate_pass = true;

  for (const double load : kLoadLevels) {
    const sim::SystemConfig config = load_config(load);

    // Record the offered load once per level; the recording scheduler only
    // shapes the recorded *decisions*, which workload replay discards.
    sim::TraceRecorder recorder;
    {
      core::MaxFlowScheduler recording_scheduler;
      sim::simulate_system(net, recording_scheduler, config, recorder);
    }
    const sim::Trace& workload = recorder.trace();

    std::vector<Row> rows;
    std::int64_t optimal_granted = 0;
    for (const std::string& name : kSchedulers) {
      const auto scheduler = core::make_named_scheduler(name, /*seed=*/1);
      const sim::SystemMetrics metrics =
          sim::simulate_workload(net, *scheduler, workload, config);
      Row row;
      row.scheduler = scheduler->name();
      row.granted = metrics.requests_granted;
      row.completed = metrics.tasks_completed;
      row.mean_response = metrics.mean_response_time;
      row.p99_response = metrics.p99_response_time;
      if (name == "dinic") optimal_granted = row.granted;
      rows.push_back(row);
    }

    const std::string load_label = "load-" + util::fixed(load, 2);
    for (Row& row : rows) {
      row.loss = optimal_granted > 0
                     ? 1.0 - static_cast<double>(row.granted) /
                                 static_cast<double>(optimal_granted)
                     : 0.0;
      table.add(util::fixed(load, 2), row.scheduler, row.granted,
                row.completed, util::fixed(row.mean_response, 3),
                util::fixed(row.p99_response, 3), util::fixed(row.loss, 3));
      const std::string prefix = "bench.scheduler_zoo." + load_label + "." +
                                 obs::metric_label(row.scheduler);
      out.gauge(prefix + ".granted").set(static_cast<double>(row.granted));
      out.gauge(prefix + ".completed")
          .set(static_cast<double>(row.completed));
      out.gauge(prefix + ".mean_response_time").set(row.mean_response);
      out.gauge(prefix + ".p99_response_time").set(row.p99_response);
      out.gauge(prefix + ".optimality_loss").set(row.loss);

      if (row.scheduler == "randomized-match" &&
          2 * row.granted < optimal_granted) {
        gate_pass = false;
        std::cout << "GATE FAIL at load " << util::fixed(load, 2)
                  << ": randomized-match granted " << row.granted
                  << " < half of optimal " << optimal_granted << "\n";
      }
    }
  }

  std::cout << table << "\n"
            << "acceptance (randomized-match granted >= 1/2 optimal at "
               "every load level): "
            << (gate_pass ? "PASS" : "FAIL") << "\n";
  out.gauge("bench.scheduler_zoo.pass").set(gate_pass ? 1.0 : 0.0);
  std::ofstream json_out("BENCH_scheduler_zoo.json");
  obs::write_json(out.snapshot(), json_out);
  std::cout << "results written to BENCH_scheduler_zoo.json\n";
  return gate_pass ? 0 : 1;
}
