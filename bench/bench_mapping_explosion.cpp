// E7 — Section III's motivation: exhaustive scheduling is hopeless.
//
// The paper: "The scheduler has to try a maximum of C(x,y)*y! (for x >= y)
// mappings to find the best one ... heuristics are only practical when x
// and y are small." This binary tabulates that count against the measured
// work of the flow-based scheduler on the same instance sizes.
#include <iostream>

#include "core/scheduler.hpp"
#include "topo/builders.hpp"
#include "util/combinatorics.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsin;
  std::cout << "=== E7: exhaustive mapping count C(x,y)*y! vs network-flow "
               "work ===\n\n";

  util::Table table({"n (= x = y)", "mappings to try", "log10",
                     "max-flow edge ops", "max-flow time (us)"});

  for (const std::int32_t n : {2, 4, 8, 16, 32, 64, 128}) {
    const topo::Network net = topo::make_omega(n);
    std::vector<topo::ProcessorId> requesting;
    std::vector<topo::ResourceId> available;
    for (std::int32_t i = 0; i < n; ++i) {
      requesting.push_back(i);
      available.push_back(i);
    }
    const core::Problem problem =
        core::make_problem(net, requesting, available);

    core::MaxFlowScheduler scheduler;
    util::Stopwatch watch;
    const core::ScheduleResult result = scheduler.schedule(problem);
    const double micros = watch.micros();

    const auto count = util::exhaustive_mapping_count(
        static_cast<unsigned>(n), static_cast<unsigned>(n));
    const std::string count_text =
        count ? std::to_string(*count) : std::string("> 2^64");
    table.add(n, count_text,
              util::fixed(util::exhaustive_mapping_count_log10(
                              static_cast<unsigned>(n),
                              static_cast<unsigned>(n)),
                          1),
              result.operations, util::fixed(micros, 0));
  }
  std::cout << table
            << "\nthe flow formulation replaces factorial enumeration with "
               "O(V^2/3 * E) work (Dinic, unit capacities)\n";
  return 0;
}
